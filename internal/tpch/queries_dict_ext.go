package tpch

import (
	"strings"

	"repro/internal/decimal"
)

// Compiled Q7–Q10 over the ConcurrentDictionary representation: the
// driving lineitem scans enumerate the dictionary shards (hash order,
// per-shard locking) while the joins stay reference-based, as in
// queries_dict.go.

// DictQ7 runs the volume-shipping query driving from the lineitem
// dictionary.
func DictQ7(db *DictDB, p Params) []Q7Row {
	one := decimal.FromInt64(1)
	rev := make(map[int32]*decimal.Dec128, 4)
	db.LineitemsByKey.Range(func(_ int64, lp **MLineitem) bool {
		l := *lp
		if l.ShipDate < q7DateLo || l.ShipDate > q7DateHi {
			return true
		}
		sn := l.Supplier.Nation.Name
		cn := l.Order.Customer.Nation.Name
		var first bool
		switch {
		case sn == p.Q7Nation1 && cn == p.Q7Nation2:
			first = true
		case sn == p.Q7Nation2 && cn == p.Q7Nation1:
			first = false
		default:
			return true
		}
		k := q7Dir(first, l.ShipDate.Year())
		a := rev[k]
		if a == nil {
			a = &decimal.Dec128{}
			rev[k] = a
		}
		*a = a.Add(l.ExtendedPrice.Mul(one.Sub(l.Discount)))
		return true
	})
	rows := make([]Q7Row, 0, len(rev))
	for k, v := range rev {
		sn, cn := p.Q7Nation1, p.Q7Nation2
		if k&1 == 1 {
			sn, cn = cn, sn
		}
		rows = append(rows, Q7Row{SuppNation: sn, CustNation: cn, Year: k >> 1, Revenue: *v})
	}
	SortQ7(rows)
	return rows
}

// DictQ8 runs the national-market-share query driving from the lineitem
// dictionary.
func DictQ8(db *DictDB, p Params) []Q8Row {
	one := decimal.FromInt64(1)
	groups := make(map[int32]*q8Acc, 2)
	db.LineitemsByKey.Range(func(_ int64, lp **MLineitem) bool {
		l := *lp
		o := l.Order
		if o.OrderDate < q7DateLo || o.OrderDate > q7DateHi {
			return true
		}
		if l.Part.Type != p.Q8Type {
			return true
		}
		if o.Customer.Nation.Region.Name != p.Q8Region {
			return true
		}
		y := int32(o.OrderDate.Year())
		a := groups[y]
		if a == nil {
			a = &q8Acc{}
			groups[y] = a
		}
		vol := l.ExtendedPrice.Mul(one.Sub(l.Discount))
		a.total = a.total.Add(vol)
		if l.Supplier.Nation.Name == p.Q8Nation {
			a.nation = a.nation.Add(vol)
		}
		return true
	})
	return q8Finish(groups)
}

// DictQ9 runs the product-type-profit query; PARTSUPP has no dictionary,
// so the cost table is built from the managed list as in DictQ2.
func DictQ9(db *DictDB, p Params) []Q9Row {
	cost := make(map[psKey]decimal.Dec128, db.PartSupps.Len())
	for _, ps := range db.PartSupps.Items() {
		cost[psKey{ps.Part.Key, ps.Supplier.Key}] = ps.SupplyCost
	}
	one := decimal.FromInt64(1)
	type gk struct {
		nation string
		year   int32
	}
	profit := make(map[gk]*decimal.Dec128)
	db.LineitemsByKey.Range(func(_ int64, lp **MLineitem) bool {
		l := *lp
		if !strings.Contains(l.Part.Name, p.Q9Color) {
			return true
		}
		c, ok := cost[psKey{l.Part.Key, l.Supplier.Key}]
		if !ok {
			return true
		}
		amount := l.ExtendedPrice.Mul(one.Sub(l.Discount)).Sub(c.Mul(l.Quantity))
		k := gk{nation: l.Supplier.Nation.Name, year: int32(l.Order.OrderDate.Year())}
		a := profit[k]
		if a == nil {
			a = &decimal.Dec128{}
			profit[k] = a
		}
		*a = a.Add(amount)
		return true
	})
	rows := make([]Q9Row, 0, len(profit))
	for k, v := range profit {
		rows = append(rows, Q9Row{Nation: k.nation, Year: k.year, SumProfit: *v})
	}
	SortQ9(rows)
	return rows
}

// DictQ10 runs the returned-item report driving from the lineitem
// dictionary.
func DictQ10(db *DictDB, p Params) []Q10Row {
	hi := p.Q10Date.AddMonths(3)
	one := decimal.FromInt64(1)
	rev := make(map[*MCustomer]*decimal.Dec128)
	db.LineitemsByKey.Range(func(_ int64, lp **MLineitem) bool {
		l := *lp
		if l.ReturnFlag != 'R' {
			return true
		}
		o := l.Order
		if o.OrderDate < p.Q10Date || o.OrderDate >= hi {
			return true
		}
		c := o.Customer
		a := rev[c]
		if a == nil {
			a = &decimal.Dec128{}
			rev[c] = a
		}
		*a = a.Add(l.ExtendedPrice.Mul(one.Sub(l.Discount)))
		return true
	})
	rows := make([]Q10Row, 0, len(rev))
	for c, v := range rev {
		rows = append(rows, Q10Row{
			CustKey: c.Key, Name: c.Name, Revenue: *v, AcctBal: c.AcctBal,
			Nation: c.Nation.Name, Address: c.Address, Phone: c.Phone,
			Comment: c.Comment,
		})
	}
	return SortQ10(rows)
}

// DictAllX runs Q7–Q10 over the dictionary representation.
func DictAllX(db *DictDB, p Params) *ResultX {
	return &ResultX{
		Q7:  DictQ7(db, p),
		Q8:  DictQ8(db, p),
		Q9:  DictQ9(db, p),
		Q10: DictQ10(db, p),
	}
}
