package tpch

import (
	"testing"

	"repro/internal/core"
)

// testSF keeps the cross-engine tests fast but large enough to hit every
// query's grouping and join paths (≈6k lineitems).
const testSF = 0.001

func testDataset(t *testing.T) *Dataset {
	t.Helper()
	return Generate(testSF, 42)
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(0.001, 7)
	b := Generate(0.001, 7)
	if len(a.Lineitems) != len(b.Lineitems) {
		t.Fatal("non-deterministic cardinality")
	}
	for i := range a.Lineitems {
		if a.Lineitems[i] != b.Lineitems[i] {
			t.Fatalf("lineitem %d differs", i)
		}
	}
	c := Generate(0.001, 8)
	same := 0
	for i := range a.Lineitems {
		if i < len(c.Lineitems) && a.Lineitems[i] == c.Lineitems[i] {
			same++
		}
	}
	if same == len(a.Lineitems) {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGenerateShape(t *testing.T) {
	d := testDataset(t)
	if len(d.Regions) != 5 || len(d.Nations) != 25 {
		t.Fatalf("region/nation counts: %d/%d", len(d.Regions), len(d.Nations))
	}
	if len(d.Orders) == 0 || len(d.Lineitems) < len(d.Orders) {
		t.Fatalf("orders=%d lineitems=%d", len(d.Orders), len(d.Lineitems))
	}
	avg := float64(len(d.Lineitems)) / float64(len(d.Orders))
	if avg < 2 || avg > 6 {
		t.Fatalf("avg lineitems per order = %v, want 1..7 uniform (≈4)", avg)
	}
	// Every FK resolves.
	nPart, nSupp, nCust := int64(len(d.Parts)), int64(len(d.Suppliers)), int64(len(d.Customers))
	for _, l := range d.Lineitems {
		if l.PartKey < 1 || l.PartKey > nPart || l.SupplierKey < 1 || l.SupplierKey > nSupp {
			t.Fatalf("lineitem FK out of range: %+v", l)
		}
	}
	for _, o := range d.Orders {
		if o.CustomerKey < 1 || o.CustomerKey > nCust {
			t.Fatalf("order FK out of range: %+v", o)
		}
	}
	// Date sanity: shipdate after orderdate.
	byKey := make(map[int64]OrderRow)
	for _, o := range d.Orders {
		byKey[o.Key] = o
	}
	for _, l := range d.Lineitems {
		o := byKey[l.OrderKey]
		if l.ShipDate <= o.OrderDate {
			t.Fatalf("shipdate %v not after orderdate %v", l.ShipDate, o.OrderDate)
		}
		if l.ReceiptDate <= l.ShipDate {
			t.Fatalf("receiptdate %v not after shipdate %v", l.ReceiptDate, l.ShipDate)
		}
	}
}

// TestAllEnginesAgree is the gold test: List (compiled), Dictionary,
// LINQ, SMC safe, SMC unsafe (all three layouts) and the column store
// must produce byte-identical results for Q1–Q6.
func TestAllEnginesAgree(t *testing.T) {
	d := testDataset(t)
	p := DefaultParams()

	mdb := LoadManaged(d)
	gold := ListAll(mdb, p)

	if len(gold.Q1) == 0 || len(gold.Q3) == 0 || len(gold.Q4) == 0 || len(gold.Q5) == 0 || gold.Q6.IsZero() {
		t.Fatalf("gold result suspiciously empty: %d/%d/%d/%d/%v",
			len(gold.Q1), len(gold.Q3), len(gold.Q4), len(gold.Q5), gold.Q6)
	}

	t.Run("dict", func(t *testing.T) {
		ddb := LoadDict(mdb)
		if diff := gold.Diff(DictAll(ddb, p)); diff != "" {
			t.Fatal(diff)
		}
	})
	t.Run("linq", func(t *testing.T) {
		if diff := gold.Diff(LinqAll(mdb, p)); diff != "" {
			t.Fatal(diff)
		}
	})
	for _, layout := range []core.Layout{core.RowIndirect, core.RowDirect, core.Columnar} {
		layout := layout
		t.Run("smc-"+layout.String(), func(t *testing.T) {
			rt := core.MustRuntime(core.Options{HeapBackend: true})
			defer rt.Close()
			s := rt.MustSession()
			defer s.Close()
			sdb, err := LoadSMC(rt, s, d, layout)
			if err != nil {
				t.Fatal(err)
			}
			if diff := gold.Diff(SMCSafeAll(sdb, s, p)); diff != "" {
				t.Fatalf("safe: %s", diff)
			}
			q := NewSMCQueries(sdb)
			if diff := gold.Diff(q.All(s, p)); diff != "" {
				t.Fatalf("unsafe: %s", diff)
			}
		})
	}
}

func TestSMCQueriesSurviveChurnAndCompaction(t *testing.T) {
	// Remove a deterministic slice of lineitems from both the managed
	// and the SMC representation, compact, and compare results again.
	d := testDataset(t)
	p := DefaultParams()

	mdb := LoadManaged(d)
	rt := core.MustRuntime(core.Options{HeapBackend: true})
	defer rt.Close()
	s := rt.MustSession()
	defer s.Close()
	sdb, err := LoadSMC(rt, s, d, core.RowDirect)
	if err != nil {
		t.Fatal(err)
	}

	// Remove every 4th lineitem (predicate on orderkey%4… use row order).
	drop := func(orderKey int64) bool { return orderKey%4 == 0 }
	mdb.Lineitems.RemoveWhere(func(l *MLineitem) bool { return drop(l.OrderKey) })

	var victims []core.Ref[SLineitem]
	sdb.Lineitems.ForEach(s, func(r core.Ref[SLineitem], l *SLineitem) bool {
		if drop(l.OrderKey) {
			victims = append(victims, r)
		}
		return true
	})
	for _, v := range victims {
		if err := sdb.Lineitems.Remove(s, v); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rt.CompactNow(); err != nil {
		t.Fatal(err)
	}

	gold := ListAll(mdb, p)
	q := NewSMCQueries(sdb)
	if diff := gold.Diff(q.All(s, p)); diff != "" {
		t.Fatalf("after churn+compaction: %s", diff)
	}
}

func TestResultDiffDetects(t *testing.T) {
	d := testDataset(t)
	p := DefaultParams()
	mdb := LoadManaged(d)
	a := ListAll(mdb, p)
	b := ListAll(mdb, p)
	if diff := a.Diff(b); diff != "" {
		t.Fatalf("identical results diff: %s", diff)
	}
	if !a.Equal(b) {
		t.Fatal("Equal is false for identical results")
	}
	b.Q6 = b.Q6.Add(b.Q6)
	if a.Diff(b) == "" {
		t.Fatal("Diff missed a Q6 change")
	}
	b2 := ListAll(mdb, p)
	b2.Q1[0].Count++
	if a.Diff(b2) == "" {
		t.Fatal("Diff missed a Q1 change")
	}
}
