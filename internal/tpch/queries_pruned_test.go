package tpch

import (
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/types"
)

// The pruned-scan contract: every parallel driver with predicate
// pushdown (Q1/Q3/Q6/Q10 plus the pipeline-native Q4Par) must return
// byte-identical results to its unpruned serial oracle — pruning drops
// blocks that provably hold no matching row, the kernels keep evaluating
// the residual predicate, so the answer cannot change.

// TestPrunedQueriesMatchOracle: quiesced collections, all layouts,
// 1..NumCPU workers.
func TestPrunedQueriesMatchOracle(t *testing.T) {
	d := testDataset(t)
	p := DefaultParams()
	for _, layout := range []core.Layout{core.RowIndirect, core.RowDirect, core.Columnar} {
		layout := layout
		t.Run(layout.String(), func(t *testing.T) {
			rt := core.MustRuntime(core.Options{HeapBackend: true})
			defer rt.Close()
			s := rt.MustSession()
			defer s.Close()
			sdb, err := LoadSMC(rt, s, d, layout)
			if err != nil {
				t.Fatal(err)
			}
			q := NewSMCQueries(sdb)
			wantQ1 := q.Q1(s, p)
			wantQ3 := q.Q3(s, p)
			wantQ4 := q.Q4(s, p)
			wantQ6 := q.Q6(s, p)
			wantQ10 := q.Q10(s, p)
			if len(wantQ4) == 0 {
				t.Fatal("serial Q4 baseline empty: dataset too small for the semi-join")
			}
			for _, workers := range joinWorkerCounts() {
				if got := q.Q1Par(s, p, workers); !reflect.DeepEqual(got, wantQ1) {
					t.Fatalf("pruned Q1Par(workers=%d) diverges from serial Q1", workers)
				}
				if got := q.Q3Par(s, p, workers); !reflect.DeepEqual(got, wantQ3) {
					t.Fatalf("pruned Q3Par(workers=%d) diverges from serial Q3", workers)
				}
				if got := q.Q4Par(s, p, workers); !reflect.DeepEqual(got, wantQ4) {
					t.Fatalf("pruned Q4Par(workers=%d) diverges from serial Q4:\n got %+v\nwant %+v", workers, got, wantQ4)
				}
				if got := q.Q6Par(s, p, workers); got != wantQ6 {
					t.Fatalf("pruned Q6Par(workers=%d) = %v, want %v", workers, got, wantQ6)
				}
				if got := q.Q10Par(s, p, workers); !reflect.DeepEqual(got, wantQ10) {
					t.Fatalf("pruned Q10Par(workers=%d) diverges from serial Q10", workers)
				}
			}
		})
	}
}

// TestPrunedScanActuallyPrunes: on a ship-date-clustered load (small
// blocks so the collection spans many), the Q6 window predicate must
// skip blocks — the BlocksPruned runtime counter has to move, and the
// results still match the oracle.
func TestPrunedScanActuallyPrunes(t *testing.T) {
	d := testDataset(t)
	// Cluster lineitems by ship date so block bounds are narrow date
	// ranges (the append-in-event-time shape zone maps reward).
	sorted := *d
	sorted.Lineitems = append([]LineitemRow(nil), d.Lineitems...)
	sort.SliceStable(sorted.Lineitems, func(i, j int) bool {
		return sorted.Lineitems[i].ShipDate < sorted.Lineitems[j].ShipDate
	})
	p := DefaultParams()
	rt := core.MustRuntime(core.Options{HeapBackend: true, BlockSize: 1 << 14})
	defer rt.Close()
	s := rt.MustSession()
	defer s.Close()
	sdb, err := LoadSMC(rt, s, &sorted, core.RowIndirect)
	if err != nil {
		t.Fatal(err)
	}
	if sdb.Lineitems.Context().Blocks() < 8 {
		t.Fatalf("only %d lineitem blocks; pruning test needs a multi-block heap", sdb.Lineitems.Context().Blocks())
	}
	q := NewSMCQueries(sdb)
	want := q.Q6(s, p)
	before := rt.StatsSnapshot()
	for _, workers := range []int{1, 2, 4} {
		if got := q.Q6Par(s, p, workers); got != want {
			t.Fatalf("pruned Q6Par(workers=%d) = %v, want %v", workers, got, want)
		}
	}
	after := rt.StatsSnapshot()
	if after.BlocksPruned == before.BlocksPruned {
		t.Fatal("BlocksPruned did not move on a date-clustered heap")
	}
	if after.BlocksScanned == before.BlocksScanned {
		t.Fatal("BlocksScanned did not move")
	}
	if after.BlocksPruned-before.BlocksPruned <= after.BlocksScanned-before.BlocksScanned {
		t.Fatalf("expected majority pruning on a clustered 1-year window: pruned %d, scanned %d",
			after.BlocksPruned-before.BlocksPruned, after.BlocksScanned-before.BlocksScanned)
	}
}

// TestPrunedParallelMaintainerChurnStress runs every pruned driver
// against concurrent add/remove churn with an active background
// Maintainer. The churned rows are crafted to fail every residual
// predicate (far-future ship dates, commit==receipt, non-'R' return
// flags, null references; churned orders sit outside the Q4 window), so
// the stable rows fully determine the answers: every pruned parallel run
// must return exactly the serial baseline while blocks appear, widen,
// empty, compact and re-tighten underneath it. Run with -race.
func TestPrunedParallelMaintainerChurnStress(t *testing.T) {
	d := testDataset(t)
	p := DefaultParams()
	rt := core.MustRuntime(core.Options{HeapBackend: true})
	defer rt.Close()
	s := rt.MustSession()
	defer s.Close()
	sdb, err := LoadSMC(rt, s, d, core.RowIndirect)
	if err != nil {
		t.Fatal(err)
	}
	q := NewSMCQueries(sdb)
	wantQ1 := q.Q1(s, p)
	wantQ3 := q.Q3(s, p)
	wantQ4 := q.Q4(s, p)
	wantQ6 := q.Q6(s, p)
	wantQ10 := q.Q10(s, p)

	mt := rt.StartMaintainer(mem.MaintainerConfig{Interval: time.Millisecond})
	defer mt.Stop()

	stop := make(chan struct{})
	var fail atomic.Value
	var wg sync.WaitGroup
	farFuture := types.MakeDate(2999, 1, 1)
	const churners = 2
	for w := 0; w < churners; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cs, err := rt.NewSession()
			if err != nil {
				fail.Store(err.Error())
				return
			}
			defer cs.Close()
			var lpool []core.Ref[SLineitem]
			var opool []core.Ref[SOrder]
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Invisible lineitem: ship date past every query window,
				// commit==receipt (fails Q4's lateness test), 'N' return
				// flag, null order/part/supplier refs.
				lref, err := sdb.Lineitems.Add(cs, &SLineitem{
					OrderKey:   int64(1)<<40 | int64(w),
					ReturnFlag: 'N',
					LineStatus: 'F',
					ShipDate:   farFuture,
				})
				if err != nil {
					fail.Store(err.Error())
					return
				}
				lpool = append(lpool, lref)
				if i%4 == 0 {
					// Invisible order: far outside the Q4 window.
					oref, err := sdb.Orders.Add(cs, &SOrder{
						Key:       int64(1)<<41 | int64(i),
						OrderDate: farFuture,
					})
					if err != nil {
						fail.Store(err.Error())
						return
					}
					opool = append(opool, oref)
				}
				if len(lpool) > 16 {
					victim := lpool[0]
					lpool = lpool[1:]
					if err := sdb.Lineitems.Remove(cs, victim); err != nil {
						fail.Store(err.Error())
						return
					}
				}
				if len(opool) > 8 {
					victim := opool[0]
					opool = opool[1:]
					if err := sdb.Orders.Remove(cs, victim); err != nil {
						fail.Store(err.Error())
						return
					}
				}
			}
		}(w)
	}

	deadline := time.Now().Add(500 * time.Millisecond)
	runs := 0
	for time.Now().Before(deadline) && fail.Load() == nil {
		workers := 1 + runs%4
		if got := q.Q1Par(s, p, workers); !reflect.DeepEqual(got, wantQ1) {
			t.Fatalf("run %d: pruned Q1Par(workers=%d) diverged under churn", runs, workers)
		}
		if got := q.Q3Par(s, p, workers); !reflect.DeepEqual(got, wantQ3) {
			t.Fatalf("run %d: pruned Q3Par(workers=%d) diverged under churn", runs, workers)
		}
		if got := q.Q4Par(s, p, workers); !reflect.DeepEqual(got, wantQ4) {
			t.Fatalf("run %d: pruned Q4Par(workers=%d) diverged under churn", runs, workers)
		}
		if got := q.Q6Par(s, p, workers); got != wantQ6 {
			t.Fatalf("run %d: pruned Q6Par(workers=%d) diverged under churn", runs, workers)
		}
		if got := q.Q10Par(s, p, workers); !reflect.DeepEqual(got, wantQ10) {
			t.Fatalf("run %d: pruned Q10Par(workers=%d) diverged under churn", runs, workers)
		}
		runs++
	}
	close(stop)
	wg.Wait()
	if msg := fail.Load(); msg != nil {
		t.Fatal(msg)
	}
	if runs == 0 {
		t.Fatal("no pruned query runs completed")
	}
}
