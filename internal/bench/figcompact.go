package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/tpch"
)

// The compaction figure (beyond-paper): the §5 maintenance path swept
// over move-phase worker counts. Two series per worker count:
//
//   - Reclamation throughput: one CompactNowWorkers pass over a heavily
//     fragmented lineitem heap (75% of rows removed, every block under
//     the 30% occupancy threshold), reported as pass wall time and MB of
//     block memory reclaimed per second.
//   - Query interference: Q1 and Q6 latency measured while a compaction
//     pass (kicked off at t0 with the same worker count) runs against
//     the same fragmented heap, next to their baselines on an identical
//     quiesced heap. This is the paper's query-dominated contract under
//     maintenance pressure: enumerators pin pre-state groups and help
//     moving ones, so queries should degrade gracefully, not stall.

// CompactPoint is one worker count's measurements.
type CompactPoint struct {
	Workers int `json:"workers"`
	// CompactMs is the median wall time of one full compaction pass.
	CompactMs float64 `json:"compact_ms"`
	// ReclaimedMB is the block memory the pass handed to the graveyard.
	ReclaimedMB float64 `json:"reclaimed_mb"`
	// ReclaimMBps is ReclaimedMB / pass time.
	ReclaimMBps float64 `json:"reclaim_mbps"`
	// ObjectsMoved counts relocated objects in the measured pass.
	ObjectsMoved int64 `json:"objects_moved"`
	// Q1DuringMs / Q6DuringMs are query latencies concurrent with a
	// compaction pass at this worker count.
	Q1DuringMs float64 `json:"q1_during_ms"`
	Q6DuringMs float64 `json:"q6_during_ms"`
}

// CompactResult is the parallel-compaction scaling figure.
type CompactResult struct {
	SF   float64 `json:"sf"`
	CPUs int     `json:"cpus"`
	Reps int     `json:"reps"`
	Meta Meta    `json:"meta"`
	// Q1BaseMs / Q6BaseMs are the no-compactor baselines on an identical
	// fragmented heap.
	Q1BaseMs float64        `json:"q1_base_ms"`
	Q6BaseMs float64        `json:"q6_base_ms"`
	Points   []CompactPoint `json:"points"`
}

// fragmentedEnv is one freshly loaded, heavily fragmented lineitem heap.
type fragmentedEnv struct {
	rt *core.Runtime
	s  *core.Session
	q  *tpch.SMCQueries
}

func (e *fragmentedEnv) Close() {
	e.s.Close()
	e.rt.Close()
}

// newFragmentedEnv loads the TPC-H dataset row-indirect and removes
// three of every four lineitems, leaving every full block at ~25%
// occupancy — under the 30% compaction threshold, so one pass can
// reclaim most of the heap.
func newFragmentedEnv(o Options, data *tpch.Dataset) (*fragmentedEnv, error) {
	rt, err := core.NewRuntime(core.Options{HeapBackend: o.HeapBackend})
	if err != nil {
		return nil, err
	}
	s, err := rt.NewSession()
	if err != nil {
		rt.Close()
		return nil, err
	}
	db, err := tpch.LoadSMC(rt, s, data, core.RowIndirect)
	if err != nil {
		s.Close()
		rt.Close()
		return nil, err
	}
	refs := make([]core.Ref[tpch.SLineitem], 0, db.Lineitems.Len())
	db.Lineitems.ForEach(s, func(r core.Ref[tpch.SLineitem], _ *tpch.SLineitem) bool {
		refs = append(refs, r)
		return true
	})
	for i, r := range refs {
		if i%4 == 0 {
			continue
		}
		if err := db.Lineitems.Remove(s, r); err != nil {
			s.Close()
			rt.Close()
			return nil, err
		}
	}
	return &fragmentedEnv{rt: rt, s: s, q: tpch.NewSMCQueries(db)}, nil
}

// FigureCompact measures the parallel compaction engine over o.Threads
// worker counts: reclamation throughput of one pass over a fragmented
// heap, and Q1/Q6 interference while that pass runs. Every measurement
// reloads and re-fragments the heap (a compaction pass consumes its own
// fragmentation), so reps are independent.
func FigureCompact(o Options) (*CompactResult, error) {
	explicit := len(o.Threads) > 0
	o = o.WithDefaults()
	data := tpch.Generate(o.SF, o.Seed)
	p := tpch.DefaultParams()
	sweep := workerSweep(o.Threads, explicit)

	res := &CompactResult{SF: o.SF, CPUs: runtime.NumCPU(), Reps: o.Reps, Meta: CurrentMeta()}

	// Baselines: the same queries on an identical fragmented heap with no
	// compactor running.
	{
		env, err := newFragmentedEnv(o, data)
		if err != nil {
			return nil, err
		}
		res.Q1BaseMs = msF(median(o.Reps, func() { sinkAny = env.q.Q1(env.s, p) }))
		res.Q6BaseMs = msF(median(o.Reps, func() { sinkDec = env.q.Q6(env.s, p) }))
		env.Close()
	}

	for _, workers := range sweep {
		w := workers
		pt := CompactPoint{Workers: w}
		var passMs, reclaimedMB, q1s, q6s []float64
		for rep := 0; rep < o.Reps; rep++ {
			// Reclamation throughput: one timed pass per fresh heap.
			env, err := newFragmentedEnv(o, data)
			if err != nil {
				return nil, err
			}
			ms := env.rt.Manager().Stats()
			bytesBefore, movedBefore := ms.BytesReclaimed.Load(), ms.ObjectsMoved.Load()
			t0 := time.Now()
			if _, err := env.rt.CompactNowWorkers(w); err != nil {
				env.Close()
				return nil, err
			}
			passMs = append(passMs, msF(time.Since(t0)))
			reclaimedMB = append(reclaimedMB, float64(ms.BytesReclaimed.Load()-bytesBefore)/(1<<20))
			pt.ObjectsMoved = ms.ObjectsMoved.Load() - movedBefore
			env.Close()

			// Interference: kick a pass off at t0 on a second fresh heap
			// and run the queries against it. The pass may complete while
			// a query runs — the point measured is "query latency with a
			// compaction pass launched alongside".
			env, err = newFragmentedEnv(o, data)
			if err != nil {
				return nil, err
			}
			done := make(chan error, 1)
			go func() {
				_, err := env.rt.CompactNowWorkers(w)
				done <- err
			}()
			t0 = time.Now()
			sinkAny = env.q.Q1(env.s, p)
			q1s = append(q1s, msF(time.Since(t0)))
			t0 = time.Now()
			sinkDec = env.q.Q6(env.s, p)
			q6s = append(q6s, msF(time.Since(t0)))
			if err := <-done; err != nil {
				env.Close()
				return nil, err
			}
			env.Close()
		}
		pt.Q1DuringMs = medF(q1s)
		pt.Q6DuringMs = medF(q6s)
		pt.CompactMs = medF(passMs)
		mb := medF(reclaimedMB)
		pt.ReclaimedMB = mb
		if pt.CompactMs > 0 {
			pt.ReclaimMBps = mb / (pt.CompactMs / 1000)
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// medF returns the median of a float slice (input order is not
// preserved).
func medF(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
	return v[len(v)/2]
}

// Render emits the scaling table with speedups relative to the lowest
// measured worker count.
func (r *CompactResult) Render() *Table {
	var base CompactPoint
	if len(r.Points) > 0 {
		base = r.Points[0]
		for _, pt := range r.Points {
			if pt.Workers < base.Workers {
				base = pt
			}
		}
	}
	t := &Table{
		Title:   fmt.Sprintf("Parallel compaction scaling — SF=%v, %d CPUs (ms, ×=speedup vs %d worker(s))", r.SF, r.CPUs, base.Workers),
		Columns: []string{"workers", "compact", "×", "MB/s", "Q1 during", "Q6 during"},
		Notes: []string{
			fmt.Sprintf("Q1 baseline %s ms, Q6 baseline %s ms (same fragmented heap, no compactor)", fmtMs(r.Q1BaseMs), fmtMs(r.Q6BaseMs)),
			"one plan pass per compaction; per-group moves fan out over leased worker sessions",
			"speedup requires free cores: GOMAXPROCS=" + fmt.Sprint(runtime.GOMAXPROCS(0)),
		},
	}
	sp := func(b, v float64) string {
		if v <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.2f", b/v)
	}
	for _, pt := range r.Points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(pt.Workers),
			fmtMs(pt.CompactMs), sp(base.CompactMs, pt.CompactMs),
			fmt.Sprintf("%.0f", pt.ReclaimMBps),
			fmtMs(pt.Q1DuringMs),
			fmtMs(pt.Q6DuringMs),
		})
	}
	return t
}

// WriteJSON emits the machine-readable result (BENCH_compact.json).
func (r *CompactResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
