package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/decimal"
	"repro/internal/mem"
	"repro/internal/tpch"
	"repro/internal/types"
)

// Ablations for the design choices DESIGN.md calls out. Each sub-study
// isolates one mechanism the paper (or this implementation) relies on and
// measures it against the naive alternative:
//
//  1. Critical-section granularity (§3.4/§4: "several accesses can be
//     combined into a single critical section to amortize the overhead").
//  2. The open-coded dereference fast path versus the full §5.1 protocol
//     for every reference hop.
//  3. Coalesced marshalling (single memmoves over scalar runs) versus
//     field-by-field copies in Add.
//  4. Block-size sweep: enumeration and allocation cost per block size.
type AblationResult struct {
	CSPerQuery, CSPerBlock, CSPerObject time.Duration

	DerefFast, DerefFull time.Duration

	MarshalCoalesced, MarshalFieldwise time.Duration

	Q3Region, Q3HeapMap time.Duration

	BlockSizes []int
	ScanByBS   []time.Duration
	LoadByBS   []time.Duration
}

// FigureAblation runs all ablation studies.
func FigureAblation(o Options) (*AblationResult, error) {
	o = o.WithDefaults()
	res := &AblationResult{}
	data := tpch.Generate(o.SF, o.Seed)

	rt, err := core.NewRuntime(core.Options{HeapBackend: o.HeapBackend})
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	s, err := rt.NewSession()
	if err != nil {
		return nil, err
	}
	defer s.Close()
	db, err := tpch.LoadSMC(rt, s, data, core.RowIndirect)
	if err != nil {
		return nil, err
	}

	// --- 1. Critical-section granularity: Q6-style scan over lineitems
	// summing quantities, entered once per query / per block / per object.
	ctx := db.Lineitems.Context()
	qtyF := db.Lineitems.Schema().MustField("Quantity")
	shipF := db.Lineitems.Schema().MustField("ShipDate")
	cutoff := types.MustDate("1995-01-01")

	scanBlock := func(blk *mem.Block) decimal.Dec128 {
		var sum decimal.Dec128
		n := blk.Capacity()
		for i := 0; i < n; i++ {
			if !blk.SlotIsValid(i) {
				continue
			}
			if *(*types.Date)(blk.FieldPtr(i, shipF)) >= cutoff {
				continue
			}
			decimal.AddAssign(&sum, (*decimal.Dec128)(blk.FieldPtr(i, qtyF)))
		}
		return sum
	}

	// Warm-up: page in the blocks and heat the scan kernel, so the first
	// measured variant does not absorb the cold-start cost.
	s.Enter()
	for _, blk := range ctx.SnapshotBlocks() {
		sinkAny = scanBlock(blk)
	}
	s.Exit()

	res.CSPerQuery = median(o.Reps, func() {
		var sum decimal.Dec128
		s.Enter()
		for _, blk := range ctx.SnapshotBlocks() {
			v := scanBlock(blk)
			decimal.AddAssign(&sum, &v)
		}
		s.Exit()
		sinkAny = sum
	})
	res.CSPerBlock = median(o.Reps, func() {
		var sum decimal.Dec128
		for _, blk := range ctx.SnapshotBlocks() {
			s.Enter()
			v := scanBlock(blk)
			s.Exit()
			decimal.AddAssign(&sum, &v)
		}
		sinkAny = sum
	})
	res.CSPerObject = median(o.Reps, func() {
		var sum decimal.Dec128
		for _, blk := range ctx.SnapshotBlocks() {
			n := blk.Capacity()
			for i := 0; i < n; i++ {
				s.Enter()
				if blk.SlotIsValid(i) &&
					*(*types.Date)(blk.FieldPtr(i, shipF)) < cutoff {
					decimal.AddAssign(&sum, (*decimal.Dec128)(blk.FieldPtr(i, qtyF)))
				}
				s.Exit()
			}
		}
		sinkAny = sum
	})

	// --- 2. Dereference fast path vs the full protocol: nested
	// enumeration lineitem→order, counting orders in a date range.
	q := tpch.NewSMCQueries(db)
	frOrder := db.Lineitems.FieldRefByName("Order")
	oDateF := db.Orders.Schema().MustField("OrderDate")
	lo, hi := types.MustDate("1994-01-01"), types.MustDate("1996-01-01")

	// Warm-up the nested-access path (pages of the orders blocks).
	s.Enter()
	for _, blk := range ctx.SnapshotBlocks() {
		for i := 0; i < blk.Capacity(); i++ {
			if blk.SlotIsValid(i) {
				if oobj, err := frOrder.Deref(s, objAt(blk, i)); err == nil {
					sinkAny = *(*types.Date)(oobj.Field(oDateF))
				}
			}
		}
	}
	s.Exit()

	res.DerefFast = median(o.Reps, func() {
		count := 0
		s.Enter()
		for _, blk := range ctx.SnapshotBlocks() {
			n := blk.Capacity()
			for i := 0; i < n; i++ {
				if !blk.SlotIsValid(i) {
					continue
				}
				oobj, err := q.Deref(s, &frOrder, objAt(blk, i))
				if err != nil {
					continue
				}
				if od := *(*types.Date)(oobj.Field(oDateF)); od >= lo && od < hi {
					count++
				}
			}
		}
		s.Exit()
		sinkAny = count
	})
	res.DerefFull = median(o.Reps, func() {
		count := 0
		s.Enter()
		for _, blk := range ctx.SnapshotBlocks() {
			n := blk.Capacity()
			for i := 0; i < n; i++ {
				if !blk.SlotIsValid(i) {
					continue
				}
				oobj, err := frOrder.Deref(s, objAt(blk, i))
				if err != nil {
					continue
				}
				if od := *(*types.Date)(oobj.Field(oDateF)); od >= lo && od < hi {
					count++
				}
			}
		}
		s.Exit()
		sinkAny = count
	})

	// --- 3. Coalesced vs field-by-field marshalling: Add throughput into
	// a fresh collection (strings dominate less for lineitem than customer,
	// so lineitem isolates the scalar-run effect).
	loadOnce := func(coalesced bool) {
		rt2 := core.MustRuntime(core.Options{HeapBackend: o.HeapBackend})
		defer rt2.Close()
		s2 := rt2.MustSession()
		defer s2.Close()
		coll := core.MustCollection[tpch.SLineitem](rt2, "lineitem", core.RowIndirect)
		coll.SetCoalescedCopy(coalesced)
		for i := range data.Lineitems {
			l := &data.Lineitems[i]
			coll.MustAdd(s2, &tpch.SLineitem{
				OrderKey: l.OrderKey, LineNumber: l.LineNumber,
				Quantity: l.Quantity, ExtendedPrice: l.ExtendedPrice,
				Discount: l.Discount, Tax: l.Tax,
				ReturnFlag: l.ReturnFlag, LineStatus: l.LineStatus,
				ShipDate: l.ShipDate, CommitDate: l.CommitDate,
				ReceiptDate: l.ReceiptDate, ShipInstruct: l.ShipInstruct,
				ShipMode: l.ShipMode, Comment: l.Comment,
			})
		}
	}
	loadOnce(true) // warm-up: page in the dataset and heat the allocator paths
	res.MarshalCoalesced = median(o.Reps, func() { loadOnce(true) })
	res.MarshalFieldwise = median(o.Reps, func() { loadOnce(false) })

	// --- 3b. Region vs Go-heap intermediates: Q3's group table lives in a
	// query region (§7's unsafe-query optimization) or in an ordinary map.
	p := tpch.DefaultParams()
	sinkAny = q.Q3(s, p) // warm-up both variants
	sinkAny = q.Q3MapIntermediates(s, p)
	res.Q3Region = median(o.Reps, func() { sinkAny = q.Q3(s, p) })
	res.Q3HeapMap = median(o.Reps, func() { sinkAny = q.Q3MapIntermediates(s, p) })

	// --- 4. Block-size sweep: load + scan at several block sizes.
	res.BlockSizes = []int{1 << 16, 1 << 18, 1 << 20}
	for _, bs := range res.BlockSizes {
		rt3, err := core.NewRuntime(core.Options{BlockSize: bs, HeapBackend: o.HeapBackend})
		if err != nil {
			return nil, err
		}
		s3 := rt3.MustSession()
		db3, err := tpch.LoadSMC(rt3, s3, data, core.RowIndirect)
		if err != nil {
			s3.Close()
			rt3.Close()
			return nil, err
		}
		res.LoadByBS = append(res.LoadByBS, median(o.Reps, func() {
			rtt := core.MustRuntime(core.Options{BlockSize: bs, HeapBackend: o.HeapBackend})
			st := rtt.MustSession()
			coll := core.MustCollection[tpch.SLineitem](rtt, "lineitem", core.RowIndirect)
			for i := range data.Lineitems {
				l := &data.Lineitems[i]
				coll.MustAdd(st, &tpch.SLineitem{
					OrderKey: l.OrderKey, Quantity: l.Quantity,
					ShipDate: l.ShipDate, Comment: l.Comment,
				})
			}
			st.Close()
			rtt.Close()
		}))
		ctx3 := db3.Lineitems.Context()
		qty3 := db3.Lineitems.Schema().MustField("Quantity")
		res.ScanByBS = append(res.ScanByBS, median(o.Reps, func() {
			var sum decimal.Dec128
			s3.Enter()
			for _, blk := range ctx3.SnapshotBlocks() {
				n := blk.Capacity()
				for i := 0; i < n; i++ {
					if blk.SlotIsValid(i) {
						decimal.AddAssign(&sum, (*decimal.Dec128)(blk.FieldPtr(i, qty3)))
					}
				}
			}
			s3.Exit()
			sinkAny = sum
		}))
		s3.Close()
		rt3.Close()
	}
	return res, nil
}

// Render emits one table per ablation study.
func (r *AblationResult) Render() []*Table {
	cs := &Table{
		Title:   "Ablation — critical-section granularity (§3.4/§4), Q6-style scan",
		Columns: []string{"granularity", "time (ms)", "vs per-query"},
	}
	base := r.CSPerQuery
	for _, row := range []struct {
		name string
		d    time.Duration
	}{{"per-query", r.CSPerQuery}, {"per-block", r.CSPerBlock}, {"per-object", r.CSPerObject}} {
		cs.Rows = append(cs.Rows, []string{row.name, ms(row.d), rel(base, row.d)})
	}

	dp := &Table{
		Title:   "Ablation — open-coded deref fast path vs full §5.1 protocol (nested scan)",
		Columns: []string{"path", "time (ms)", "vs fast"},
		Rows: [][]string{
			{"fast path", ms(r.DerefFast), "100"},
			{"full protocol", ms(r.DerefFull), rel(r.DerefFast, r.DerefFull)},
		},
	}

	ma := &Table{
		Title:   "Ablation — coalesced vs field-by-field marshalling (lineitem load)",
		Columns: []string{"marshal", "time (ms)", "vs coalesced"},
		Rows: [][]string{
			{"coalesced", ms(r.MarshalCoalesced), "100"},
			{"field-by-field", ms(r.MarshalFieldwise), rel(r.MarshalCoalesced, r.MarshalFieldwise)},
		},
	}

	rg := &Table{
		Title:   "Ablation — region vs Go-heap query intermediates (§7), unsafe Q3",
		Columns: []string{"intermediates", "time (ms)", "vs region"},
		Rows: [][]string{
			{"region table", ms(r.Q3Region), "100"},
			{"heap map", ms(r.Q3HeapMap), rel(r.Q3Region, r.Q3HeapMap)},
		},
	}

	bs := &Table{
		Title:   "Ablation — block-size sweep (lineitem load + full scan)",
		Columns: []string{"block size", "load (ms)", "scan (ms)"},
	}
	for i, b := range r.BlockSizes {
		bs.Rows = append(bs.Rows, []string{
			fmt.Sprintf("%d KiB", b/1024), ms(r.LoadByBS[i]), ms(r.ScanByBS[i]),
		})
	}
	return []*Table{cs, dp, ma, rg, bs}
}

// objAt builds a mem.Obj for row-layout compiled loops.
func objAt(b *mem.Block, slot int) mem.Obj {
	return mem.Obj{Blk: b, Slot: slot, Ptr: b.SlotData(slot)}
}
