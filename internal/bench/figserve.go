package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/decimal"
	"repro/internal/mem"
	"repro/internal/serve"
	"repro/internal/tpch"
	"repro/internal/types"
)

// The serve figure (beyond-paper): the query service front door under
// concurrent load. A real HTTP server (internal/serve) runs over a
// loopback listener with the background Maintainer active — the full
// serving posture — and swarms of concurrent clients issue
// parameterized Q6-style windowed revenue requests drawn from a fixed
// window set. Every response's sum is asserted byte-identical to the
// serial (un-served) oracle for its window, so the figure can only
// measure a semantics-preserving stack: HTTP + JSON + admission +
// shared scans may add latency, never wrong answers. The sweep reports
// p50/p99 latency and aggregate qps per concurrency level; the
// share-layer counters show concurrent requests riding one physical
// pass.

// ServePoint is one concurrency level's measurement.
type ServePoint struct {
	Clients  int `json:"clients"`
	Requests int `json:"requests"`
	// Request latency through the full served stack, and the batch's
	// aggregate throughput.
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	WallMs float64 `json:"wall_ms"`
	QPS    float64 `json:"qps"`
	// Front-door admission activity during the level (deltas).
	Admitted  int64 `json:"admitted"`
	Saturated int64 `json:"saturated"`
	// Scan-share activity during the level: concurrent q6window requests
	// attach to in-flight passes instead of paying their own.
	SharedPasses    int64 `json:"shared_passes"`
	AttachedQueries int64 `json:"attached_queries"`
}

// ServeResult is the front-door load figure. Points carries one flat
// workers=1 gate point whose "serve_<N>c_p50_ms" keys the benchdiff
// gate diffs (low-concurrency medians only; tails and the storm levels
// live in Detail, where smoke-rep noise would flake a ±30% gate).
type ServeResult struct {
	SF     float64              `json:"sf"`
	CPUs   int                  `json:"cpus"`
	Reps   int                  `json:"reps"`
	Meta   Meta                 `json:"meta"`
	Points []map[string]float64 `json:"points"`
	Detail []ServePoint         `json:"detail"`
}

// serveConcurrency is the client sweep: single caller, dashboard
// fan-out, and two storm levels.
var serveConcurrency = []int{1, 8, 64, 512}

// FigureServe measures the served q6window path end to end: open a
// listener, start the Maintainer, and drive each concurrency level's
// clients in a closed loop (every client issues its requests
// back-to-back, cycling a fixed window set).
func FigureServe(o Options) (*ServeResult, error) {
	o = o.WithDefaults()
	data := tpch.Generate(o.SF, o.Seed)

	// Date-sorted load, same shape as the share figure: tight synopses
	// make the pushdown and the share layer's catch-up both real.
	sorted := *data
	sorted.Lineitems = append([]tpch.LineitemRow(nil), data.Lineitems...)
	sort.SliceStable(sorted.Lineitems, func(i, j int) bool {
		return sorted.Lineitems[i].ShipDate < sorted.Lineitems[j].ShipDate
	})
	n := len(sorted.Lineitems)
	if n == 0 {
		return nil, fmt.Errorf("empty lineitem table at SF=%v", o.SF)
	}
	dateAt := func(frac float64) types.Date { return sorted.Lineitems[int(float64(n-1)*frac)].ShipDate }

	rt, err := core.NewRuntime(core.Options{HeapBackend: o.HeapBackend})
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	s := rt.MustSession()
	defer s.Close()
	db, err := tpch.LoadSMC(rt, s, &sorted, core.RowIndirect)
	if err != nil {
		return nil, err
	}
	q := tpch.NewSMCQueries(db)

	// The request mix: four windows of distinct selectivity, each with
	// its serial oracle sum computed before the server ever runs.
	type window struct {
		body   []byte
		oracle decimal.Dec128
	}
	bounds := [][2]types.Date{
		{dateAt(0), dateAt(0.5)},
		{dateAt(0.25), dateAt(0.75)},
		{dateAt(0), dateAt(0.1)},
		{dateAt(0.4), dateAt(0.6)},
	}
	windows := make([]window, len(bounds))
	for i, b := range bounds {
		body, err := json.Marshal(serve.Q6WindowParams{Lo: b[0], Hi: b[1]})
		if err != nil {
			return nil, err
		}
		windows[i] = window{body: body, oracle: q.Q6WindowPar(s, b[0], b[1], 1, true)}
	}

	mt := rt.StartMaintainer(mem.MaintainerConfig{Interval: 50 * time.Millisecond})
	defer mt.Stop()
	maxClients := serveConcurrency[len(serveConcurrency)-1]
	srv := serve.New(rt, q, mt, serve.Config{
		// Admission sized to the sweep: this figure measures serving
		// latency, not the 429 path (the robustness suite owns that).
		MaxConcurrent:  maxClients * 2,
		DefaultTimeout: 5 * time.Minute,
		DefaultWorkers: 1,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	defer hs.Shutdown(context.Background())
	url := "http://" + ln.Addr().String() + "/query/q6window"

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        maxClients * 2,
		MaxIdleConnsPerHost: maxClients * 2,
	}}
	doOne := func(w window) (time.Duration, error) {
		t0 := time.Now()
		resp, err := client.Post(url, "application/json", bytes.NewReader(w.body))
		if err != nil {
			return 0, err
		}
		var sum serve.SumResponse
		decErr := json.NewDecoder(resp.Body).Decode(&sum)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		d := time.Since(t0)
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("status %d", resp.StatusCode)
		}
		if decErr != nil {
			return 0, decErr
		}
		if sum.Sum != w.oracle {
			return 0, fmt.Errorf("served sum %v diverges from serial oracle %v", sum.Sum, w.oracle)
		}
		return d, nil
	}

	// Warm the path (codegen, connections, first shared pass) before any
	// timed level.
	for _, w := range windows {
		if _, err := doOne(w); err != nil {
			return nil, fmt.Errorf("warmup: %w", err)
		}
	}

	perClient := max(2, o.Reps)
	res := &ServeResult{SF: o.SF, CPUs: runtime.NumCPU(), Reps: o.Reps, Meta: CurrentMeta()}
	gate := map[string]float64{"workers": 1}
	res.Points = []map[string]float64{gate}
	for _, nc := range serveConcurrency {
		total := nc * perClient
		lats := make([]time.Duration, total)
		errs := make([]error, nc)
		before := rt.StatsSnapshot()
		var start, done sync.WaitGroup
		start.Add(1)
		done.Add(nc)
		for c := 0; c < nc; c++ {
			go func(c int) {
				defer done.Done()
				start.Wait()
				for r := 0; r < perClient; r++ {
					d, err := doOne(windows[(c+r)%len(windows)])
					if err != nil {
						errs[c] = fmt.Errorf("client %d req %d: %w", c, r, err)
						return
					}
					lats[c*perClient+r] = d
				}
			}(c)
		}
		runtime.GC()
		t0 := time.Now()
		start.Done()
		done.Wait()
		wall := time.Since(t0)
		for _, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("%d clients: %w", nc, err)
			}
		}
		after := rt.StatsSnapshot()

		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		pt := ServePoint{
			Clients:         nc,
			Requests:        total,
			P50Ms:           msF(lats[total/2]),
			P99Ms:           msF(lats[(total*99+99)/100-1]), // ceil(0.99·total)-th sample
			WallMs:          msF(wall),
			Admitted:        after.Serve.Admitted - before.Serve.Admitted,
			Saturated:       after.Serve.Saturated - before.Serve.Saturated,
			SharedPasses:    after.SharedPasses - before.SharedPasses,
			AttachedQueries: after.AttachedQueries - before.AttachedQueries,
		}
		if wall > 0 {
			pt.QPS = float64(total) / wall.Seconds()
		}
		if pt.Saturated > 0 {
			return nil, fmt.Errorf("%d clients: %d requests saturated under a %d-slot gate", nc, pt.Saturated, maxClients*2)
		}
		// Gate on the low-concurrency medians only: p99 over a smoke
		// rep's few samples swings well past the gate's ±30%, and the
		// storm levels are wall-clock-shared noise by design.
		if nc <= 8 {
			gate[fmt.Sprintf("serve_%dc_p50_ms", nc)] = pt.P50Ms
		}
		res.Detail = append(res.Detail, pt)
	}
	return res, nil
}

// Render emits the sweep table.
func (r *ServeResult) Render() *Table {
	t := &Table{
		Title:   fmt.Sprintf("Query service front door — SF=%v, %d CPUs (served q6window, workers=1 per request)", r.SF, r.CPUs),
		Columns: []string{"clients", "requests", "p50 ms", "p99 ms", "qps", "wall ms", "attached", "shared passes"},
		Notes: []string{
			"every served sum asserted identical to the serial oracle for its window",
			"attached = requests that rode an in-flight shared pass instead of paying their own",
		},
	}
	for _, pt := range r.Detail {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", pt.Clients),
			fmt.Sprintf("%d", pt.Requests),
			fmtMs(pt.P50Ms),
			fmtMs(pt.P99Ms),
			fmt.Sprintf("%.0f", pt.QPS),
			fmtMs(pt.WallMs),
			fmt.Sprintf("%d", pt.AttachedQueries),
			fmt.Sprintf("%d", pt.SharedPasses),
		})
	}
	return t
}

// WriteJSON emits the machine-readable result (BENCH_serve.json).
func (r *ServeResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
