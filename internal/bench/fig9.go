package bench

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/managed"
	"repro/internal/tpch"
)

// Figure9Result holds the maximum observed scheduling timeout while a
// churn thread allocates, for growing resident collection sizes.
type Figure9Result struct {
	Sizes  []int                // resident lineitem objects
	Series map[string][]float64 // max timeout in ms
}

// Figure9 reproduces "Impact of garbage collection" (Fig. 9): a number of
// lineitem objects is held resident in either a managed collection or an
// SMC; one thread then continuously allocates short-lived managed
// objects while a second thread sleeps 1 ms at a time and records the
// largest overshoot, which is dominated by GC activity triggered by the
// churn (§7).
//
// Substitution note: .NET's batch (non-concurrent) collector pauses all
// threads for full collections, which makes the managed series grow
// steeply. Go only has a concurrent collector; the "batch" series here
// forces periodic full runtime.GC() cycles. The growth with resident heap
// size (managed) versus flatness (SMC) is the reproduced shape; absolute
// pause magnitudes are Go's, not .NET's.
func Figure9(o Options) (*Figure9Result, error) {
	o = o.WithDefaults()
	base := tpch.Generate(o.SF, o.Seed)
	res := &Figure9Result{Series: map[string][]float64{}}

	n0 := len(base.Lineitems)
	for _, mult := range []int{1, 2, 4, 8} {
		res.Sizes = append(res.Sizes, n0*mult)
	}

	measure := func(churnBatch bool) float64 {
		stop := make(chan struct{})
		var maxOvershoot atomic.Int64

		// Sleeper thread: "continuously sleeps for one millisecond and
		// measures the time that passed in the meantime".
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				select {
				case <-stop:
					return
				default:
				}
				t0 := time.Now()
				time.Sleep(time.Millisecond)
				over := time.Since(t0) - time.Millisecond
				for {
					cur := maxOvershoot.Load()
					if int64(over) <= cur || maxOvershoot.CompareAndSwap(cur, int64(over)) {
						break
					}
				}
			}
		}()

		// Churn thread: allocates managed objects with varying lifetimes.
		go func() {
			var keep []*tpch.MLineitem
			i := 0
			lastGC := time.Now()
			for {
				select {
				case <-stop:
					return
				default:
				}
				l := rowToMLineitem(&base.Lineitems[i%n0])
				if i%7 == 0 {
					keep = append(keep, l) // longer-lived survivors
					if len(keep) > 4096 {
						keep = keep[2048:]
					}
				}
				sinkAny = l
				if churnBatch && time.Since(lastGC) > 50*time.Millisecond {
					runtime.GC()
					lastGC = time.Now()
				}
				i++
			}
		}()

		time.Sleep(400 * time.Millisecond)
		close(stop)
		<-done
		return float64(maxOvershoot.Load()) / 1e6
	}

	for _, size := range res.Sizes {
		mult := size / n0
		// Managed resident set.
		{
			list := managed.NewList[tpch.MLineitem](size)
			for m := 0; m < mult; m++ {
				for i := range base.Lineitems {
					list.AddPtr(rowToMLineitem(&base.Lineitems[i]))
				}
			}
			runtime.GC()
			res.Series["managed-interactive"] = append(res.Series["managed-interactive"], measure(false))
			res.Series["managed-batch"] = append(res.Series["managed-batch"], measure(true))
			list.Clear()
			sinkAny = nil
		}
		// Self-managed resident set.
		{
			rt, err := core.NewRuntime(core.Options{HeapBackend: o.HeapBackend})
			if err != nil {
				return nil, err
			}
			coll, err := core.NewCollection[tpch.SLineitem](rt, "lineitem", core.RowIndirect)
			if err != nil {
				rt.Close()
				return nil, err
			}
			s := rt.MustSession()
			for m := 0; m < mult; m++ {
				for i := range base.Lineitems {
					l := rowToSLineitem(&base.Lineitems[i])
					if _, err := coll.Add(s, &l); err != nil {
						rt.Close()
						return nil, err
					}
				}
			}
			runtime.GC()
			res.Series["self-managed-interactive"] = append(res.Series["self-managed-interactive"], measure(false))
			res.Series["self-managed-batch"] = append(res.Series["self-managed-batch"], measure(true))
			s.Close()
			rt.Close()
		}
	}
	return res, nil
}

// Render emits the Figure 9 table.
func (r *Figure9Result) Render() *Table {
	cols := []string{"series"}
	for _, s := range r.Sizes {
		cols = append(cols, fmt.Sprintf("%dk objs", s/1000))
	}
	t := &Table{
		Title:   "Figure 9 — longest thread timeout caused by GC (ms)",
		Columns: cols,
		Notes: []string{
			"managed series should grow with resident size; self-managed stays flat",
			"'batch' forces periodic full GCs (see DESIGN.md: Go has no .NET batch mode)",
		},
	}
	for _, name := range []string{"managed-batch", "managed-interactive", "self-managed-batch", "self-managed-interactive"} {
		row := []string{name}
		for _, v := range r.Series[name] {
			row = append(row, fmt.Sprintf("%.2f", v))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
