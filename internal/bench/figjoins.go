package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"

	"repro/internal/core"
	"repro/internal/tpch"
)

// JoinsPoint is one worker count's join-query measurements
// (milliseconds), on the indirect and direct-pointer row layouts.
type JoinsPoint struct {
	Workers  int     `json:"workers"`
	Q3IndMs  float64 `json:"q3_ind_ms"`
	Q3DirMs  float64 `json:"q3_dir_ms"`
	Q5IndMs  float64 `json:"q5_ind_ms"`
	Q5DirMs  float64 `json:"q5_dir_ms"`
	Q7IndMs  float64 `json:"q7_ind_ms"`
	Q7DirMs  float64 `json:"q7_dir_ms"`
	Q8IndMs  float64 `json:"q8_ind_ms"`
	Q8DirMs  float64 `json:"q8_dir_ms"`
	Q9IndMs  float64 `json:"q9_ind_ms"`
	Q9DirMs  float64 `json:"q9_dir_ms"`
	Q10IndMs float64 `json:"q10_ind_ms"`
	Q10DirMs float64 `json:"q10_dir_ms"`
}

// JoinsResult is the parallel-join scaling figure (beyond-paper): the
// unified query pipeline — arena leases, partitioned region tables,
// parallel per-partition merge, parallel finish — swept over worker
// counts on the reference-join queries Q3, Q5, Q7, Q8, Q9 and Q10.
type JoinsResult struct {
	SF     float64      `json:"sf"`
	CPUs   int          `json:"cpus"`
	Reps   int          `json:"reps"`
	Meta   Meta         `json:"meta"`
	Points []JoinsPoint `json:"points"`
}

// FigureJoins measures the parallel join drivers Q3Par/Q5Par/Q10Par and
// the pipeline-native Q7Par/Q8Par/Q9Par (row-indirect and row-direct
// layouts — the join-heavy queries are where §6 direct pointers matter)
// swept over worker counts. The 1-worker point runs the scan inline on
// the coordinator session with the same shared per-block kernels as the
// serial queries, so it is an honest serial baseline for the pipeline
// refactor.
func FigureJoins(o Options) (*JoinsResult, error) {
	explicit := len(o.Threads) > 0
	o = o.WithDefaults()
	data := tpch.Generate(o.SF, o.Seed)
	p := tpch.DefaultParams()

	load := func(layout core.Layout) (*core.Runtime, *core.Session, *tpch.SMCQueries, error) {
		rt, err := core.NewRuntime(core.Options{HeapBackend: o.HeapBackend})
		if err != nil {
			return nil, nil, nil, err
		}
		s := rt.MustSession()
		db, err := tpch.LoadSMC(rt, s, data, layout)
		if err != nil {
			s.Close()
			rt.Close()
			return nil, nil, nil, err
		}
		return rt, s, tpch.NewSMCQueries(db), nil
	}
	rtInd, sInd, qInd, err := load(core.RowIndirect)
	if err != nil {
		return nil, err
	}
	defer func() { sInd.Close(); rtInd.Close() }()
	rtDir, sDir, qDir, err := load(core.RowDirect)
	if err != nil {
		return nil, err
	}
	defer func() { sDir.Close(); rtDir.Close() }()

	sweep := workerSweep(o.Threads, explicit)

	res := &JoinsResult{SF: o.SF, CPUs: runtime.NumCPU(), Reps: o.Reps, Meta: CurrentMeta()}
	for _, workers := range sweep {
		w := workers
		pt := JoinsPoint{Workers: w}
		pt.Q3IndMs = msF(median(o.Reps, func() { sinkAny = qInd.Q3Par(sInd, p, w) }))
		pt.Q3DirMs = msF(median(o.Reps, func() { sinkAny = qDir.Q3Par(sDir, p, w) }))
		pt.Q5IndMs = msF(median(o.Reps, func() { sinkAny = qInd.Q5Par(sInd, p, w) }))
		pt.Q5DirMs = msF(median(o.Reps, func() { sinkAny = qDir.Q5Par(sDir, p, w) }))
		pt.Q7IndMs = msF(median(o.Reps, func() { sinkAny = qInd.Q7Par(sInd, p, w) }))
		pt.Q7DirMs = msF(median(o.Reps, func() { sinkAny = qDir.Q7Par(sDir, p, w) }))
		pt.Q8IndMs = msF(median(o.Reps, func() { sinkAny = qInd.Q8Par(sInd, p, w) }))
		pt.Q8DirMs = msF(median(o.Reps, func() { sinkAny = qDir.Q8Par(sDir, p, w) }))
		pt.Q9IndMs = msF(median(o.Reps, func() { sinkAny = qInd.Q9Par(sInd, p, w) }))
		pt.Q9DirMs = msF(median(o.Reps, func() { sinkAny = qDir.Q9Par(sDir, p, w) }))
		pt.Q10IndMs = msF(median(o.Reps, func() { sinkAny = qInd.Q10Par(sInd, p, w) }))
		pt.Q10DirMs = msF(median(o.Reps, func() { sinkAny = qDir.Q10Par(sDir, p, w) }))
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// Render emits the scaling table with speedups relative to the lowest
// measured worker count.
func (r *JoinsResult) Render() *Table {
	var base JoinsPoint
	if len(r.Points) > 0 {
		base = r.Points[0]
		for _, pt := range r.Points {
			if pt.Workers < base.Workers {
				base = pt
			}
		}
	}
	t := &Table{
		Title:   fmt.Sprintf("Parallel join scaling — SF=%v, %d CPUs (ms, ×=speedup vs %d worker(s))", r.SF, r.CPUs, base.Workers),
		Columns: []string{"workers", "Q3 ind", "×", "Q3 dir", "×", "Q5 ind", "×", "Q5 dir", "×", "Q7 ind", "×", "Q7 dir", "×", "Q8 ind", "×", "Q8 dir", "×", "Q9 ind", "×", "Q9 dir", "×", "Q10 ind", "×", "Q10 dir", "×"},
		Notes: []string{
			"unified pipeline: per-worker leased arenas + partitioned tables, parallel per-partition merge + finish",
			fmt.Sprintf("speedup requires free cores: GOMAXPROCS=%d, %s", r.Meta.GOMAXPROCS, r.Meta.GoVersion),
		},
	}
	sp := func(b, v float64) string {
		if v <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.2f", b/v)
	}
	for _, pt := range r.Points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(pt.Workers),
			fmtMs(pt.Q3IndMs), sp(base.Q3IndMs, pt.Q3IndMs),
			fmtMs(pt.Q3DirMs), sp(base.Q3DirMs, pt.Q3DirMs),
			fmtMs(pt.Q5IndMs), sp(base.Q5IndMs, pt.Q5IndMs),
			fmtMs(pt.Q5DirMs), sp(base.Q5DirMs, pt.Q5DirMs),
			fmtMs(pt.Q7IndMs), sp(base.Q7IndMs, pt.Q7IndMs),
			fmtMs(pt.Q7DirMs), sp(base.Q7DirMs, pt.Q7DirMs),
			fmtMs(pt.Q8IndMs), sp(base.Q8IndMs, pt.Q8IndMs),
			fmtMs(pt.Q8DirMs), sp(base.Q8DirMs, pt.Q8DirMs),
			fmtMs(pt.Q9IndMs), sp(base.Q9IndMs, pt.Q9IndMs),
			fmtMs(pt.Q9DirMs), sp(base.Q9DirMs, pt.Q9DirMs),
			fmtMs(pt.Q10IndMs), sp(base.Q10IndMs, pt.Q10IndMs),
			fmtMs(pt.Q10DirMs), sp(base.Q10DirMs, pt.Q10DirMs),
		})
	}
	return t
}

// WriteJSON emits the machine-readable result (BENCH_joins.json).
func (r *JoinsResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
