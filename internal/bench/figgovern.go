package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/decimal"
	"repro/internal/mem"
	"repro/internal/serve"
	"repro/internal/tpch"
	"repro/internal/types"
)

// The governance figure (beyond-paper): graceful degradation under a
// shrinking memory budget. The served q6window path runs under budgets
// swept from unbounded down to 0.9x the measured governed working set;
// at every level the process must keep its invariants — zero OOMs, zero
// panics, every success byte-identical to the serial oracle, every
// failure the typed 503 budget_exceeded with a reclaim-rate-derived
// Retry-After — while the governor's degradation ladder shows up in the
// counters: arena retention and the session pool shrink before any
// admission fails, and the pressure level escalates with the deficit.

// GovernPoint is one budget level's measurement.
type GovernPoint struct {
	// Label names the budget level; Budget is the configured byte limit
	// (0 = unbounded) and WorkingSet the governed total it was derived
	// from.
	Label      string `json:"label"`
	Budget     int64  `json:"budget"`
	WorkingSet int64  `json:"working_set"`
	// Request outcomes: successes (oracle-asserted) vs typed budget
	// rejections; RejectedFrac is rejections over total. Anything else —
	// a 500, a panic, an untyped failure — aborts the figure.
	Requests     int     `json:"requests"`
	Rejected     int     `json:"rejected"`
	RejectedFrac float64 `json:"rejected_frac"`
	// Latency of successful requests through the full served stack.
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	// Governor activity during the level (deltas): ladder passes, arena
	// bytes trimmed, sessions closed, restores after pressure cleared.
	Rebalances      int64 `json:"rebalances"`
	ArenaBytesFreed int64 `json:"arena_bytes_freed"`
	SessionsTrimmed int64 `json:"sessions_trimmed"`
	Restores        int64 `json:"restores"`
	// Level is the pressure classification when the batch finished.
	Level string `json:"level"`
}

// GovernResult is the adaptive-governance figure. Points carries one
// flat workers=1 gate point whose unpressured medians the benchdiff gate
// diffs (the pressured levels queue admissions by design — their
// latencies are backpressure, not regressions).
type GovernResult struct {
	SF         float64              `json:"sf"`
	CPUs       int                  `json:"cpus"`
	Reps       int                  `json:"reps"`
	WorkingSet int64                `json:"working_set"`
	Meta       Meta                 `json:"meta"`
	Points     []map[string]float64 `json:"points"`
	Detail     []GovernPoint        `json:"detail"`
}

// governBudgets is the sweep: unbounded, comfortable headroom, just
// above the working set, and below it (the level that forces the full
// ladder).
var governBudgets = []struct {
	label string
	frac  float64 // of the measured working set; 0 = unbounded
}{
	{"unbounded", 0},
	{"2x", 2.0},
	{"1.25x", 1.25},
	{"0.9x", 0.9},
}

// governClients is the fixed concurrent-client count per level.
const governClients = 16

// FigureGovern measures graceful degradation end to end: serve q6window
// to concurrent clients while the memory budget steps down across the
// measured working set.
func FigureGovern(o Options) (*GovernResult, error) {
	o = o.WithDefaults()
	data := tpch.Generate(o.SF, o.Seed)

	sorted := *data
	sorted.Lineitems = append([]tpch.LineitemRow(nil), data.Lineitems...)
	sort.SliceStable(sorted.Lineitems, func(i, j int) bool {
		return sorted.Lineitems[i].ShipDate < sorted.Lineitems[j].ShipDate
	})
	n := len(sorted.Lineitems)
	if n == 0 {
		return nil, fmt.Errorf("empty lineitem table at SF=%v", o.SF)
	}
	dateAt := func(frac float64) types.Date { return sorted.Lineitems[int(float64(n-1)*frac)].ShipDate }

	rt, err := core.NewRuntime(core.Options{HeapBackend: o.HeapBackend})
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	s := rt.MustSession()
	defer s.Close()
	db, err := tpch.LoadSMC(rt, s, &sorted, core.RowIndirect)
	if err != nil {
		return nil, err
	}
	q := tpch.NewSMCQueries(db)

	type window struct {
		body   []byte
		oracle decimal.Dec128
	}
	bounds := [][2]types.Date{
		{dateAt(0), dateAt(0.5)},
		{dateAt(0.25), dateAt(0.75)},
		{dateAt(0), dateAt(0.1)},
		{dateAt(0.4), dateAt(0.6)},
	}
	windows := make([]window, len(bounds))
	for i, b := range bounds {
		body, err := json.Marshal(serve.Q6WindowParams{Lo: b[0], Hi: b[1]})
		if err != nil {
			return nil, err
		}
		windows[i] = window{body: body, oracle: q.Q6WindowPar(s, b[0], b[1], 1, true)}
	}

	mt := rt.StartMaintainer(mem.MaintainerConfig{Interval: 10 * time.Millisecond})
	defer mt.Stop()
	srv := serve.New(rt, q, mt, serve.Config{
		MaxConcurrent:  governClients * 2,
		DefaultTimeout: 5 * time.Minute,
		DefaultWorkers: 1,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	defer hs.Shutdown(context.Background())
	base := "http://" + ln.Addr().String()
	url := base + "/query/q6window"

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        governClients * 2,
		MaxIdleConnsPerHost: governClients * 2,
	}}

	// doOne runs one served request. A 200 must match the serial oracle;
	// a 503 must be the typed budget rejection with a clamped integer
	// Retry-After — the only failure the governance contract allows.
	doOne := func(w window) (d time.Duration, rejected bool, err error) {
		t0 := time.Now()
		resp, err := client.Post(url, "application/json", bytes.NewReader(w.body))
		if err != nil {
			return 0, false, err
		}
		defer func() {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}()
		switch resp.StatusCode {
		case http.StatusOK:
			var sum serve.SumResponse
			if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
				return 0, false, err
			}
			if sum.Sum != w.oracle {
				return 0, false, fmt.Errorf("served sum %v diverges from serial oracle %v", sum.Sum, w.oracle)
			}
			return time.Since(t0), false, nil
		case http.StatusServiceUnavailable:
			var env serve.ErrorEnvelope
			if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
				return 0, false, err
			}
			if env.Error.Code != "budget_exceeded" {
				return 0, false, fmt.Errorf("503 with code %q, want budget_exceeded", env.Error.Code)
			}
			secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
			if err != nil || secs < 1 || secs > 30 {
				return 0, false, fmt.Errorf("budget 503 Retry-After %q outside the [1, 30] clamp", resp.Header.Get("Retry-After"))
			}
			return 0, true, nil
		default:
			return 0, false, fmt.Errorf("status %d — only 200 and typed 503 are allowed under pressure", resp.StatusCode)
		}
	}

	// Warm the path, then park arena slack: Q3's hash join leases arenas
	// and returns them to the registered pool, so the working set the
	// budgets derive from includes real arena retention for the ladder to
	// trim.
	for _, w := range windows {
		if _, _, err := doOne(w); err != nil {
			return nil, fmt.Errorf("warmup: %w", err)
		}
	}
	for i := 0; i < 4; i++ {
		resp, err := client.Post(base+"/query/q3", "application/json", bytes.NewReader([]byte(`{}`)))
		if err != nil {
			return nil, fmt.Errorf("q3 warmup: %w", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("q3 warmup: status %d", resp.StatusCode)
		}
	}

	ws := rt.StatsSnapshot().Governor.GovernedUsed
	if ws <= 0 {
		return nil, fmt.Errorf("degenerate working set %d", ws)
	}

	perClient := max(2, o.Reps)
	res := &GovernResult{SF: o.SF, CPUs: runtime.NumCPU(), Reps: o.Reps, WorkingSet: ws, Meta: CurrentMeta()}
	gate := map[string]float64{"workers": 1}
	res.Points = []map[string]float64{gate}
	for _, lvl := range governBudgets {
		budget := int64(0)
		if lvl.frac > 0 {
			budget = int64(lvl.frac * float64(ws))
		}
		// Snapshot before the budget lands so the level's deltas include
		// the trims the maintainer runs the moment pressure appears.
		before := rt.StatsSnapshot().Governor
		rt.SetMemoryBudget(budget)
		// Let the maintainer reclassify (and, stepping back up, restore
		// bounds) before the batch.
		time.Sleep(30 * time.Millisecond)

		total := governClients * perClient
		lats := make([]time.Duration, 0, total)
		var latMu sync.Mutex
		rejects := make([]int, governClients)
		errs := make([]error, governClients)
		var start, done sync.WaitGroup
		start.Add(1)
		done.Add(governClients)
		for c := 0; c < governClients; c++ {
			go func(c int) {
				defer done.Done()
				start.Wait()
				for r := 0; r < perClient; r++ {
					d, rejected, err := doOne(windows[(c+r)%len(windows)])
					if err != nil {
						errs[c] = fmt.Errorf("client %d req %d: %w", c, r, err)
						return
					}
					if rejected {
						rejects[c]++
						continue
					}
					latMu.Lock()
					lats = append(lats, d)
					latMu.Unlock()
				}
			}(c)
		}
		runtime.GC()
		start.Done()
		done.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("budget %s: %w", lvl.label, err)
			}
		}
		after := rt.StatsSnapshot().Governor

		rejected := 0
		for _, r := range rejects {
			rejected += r
		}
		pt := GovernPoint{
			Label:           lvl.label,
			Budget:          budget,
			WorkingSet:      ws,
			Requests:        total,
			Rejected:        rejected,
			RejectedFrac:    float64(rejected) / float64(total),
			Rebalances:      after.Rebalances - before.Rebalances,
			ArenaBytesFreed: after.ArenaBytesFreed - before.ArenaBytesFreed,
			SessionsTrimmed: after.SessionsTrimmed - before.SessionsTrimmed,
			Restores:        after.Restores - before.Restores,
			Level:           after.Level,
		}
		if len(lats) > 0 {
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			pt.P50Ms = msF(lats[len(lats)/2])
			pt.P99Ms = msF(lats[(len(lats)*99+99)/100-1])
		}
		// Shrink-before-fail: by the time any admission failed, the
		// ladder must already have given bytes back (this or an earlier
		// level — the sweep tightens monotonically).
		if rejected > 0 && after.ArenaBytesFreed == 0 && after.SessionsTrimmed == 0 {
			return nil, fmt.Errorf("budget %s: %d admissions failed before any arena/session trim", lvl.label, rejected)
		}
		// The unpressured levels gate the benchdiff: pressured medians
		// are backpressure by design.
		switch lvl.label {
		case "unbounded":
			gate["govern_unbounded_p50_ms"] = pt.P50Ms
		case "2x":
			gate["govern_2x_p50_ms"] = pt.P50Ms
		}
		res.Detail = append(res.Detail, pt)
	}
	rt.SetMemoryBudget(0)
	return res, nil
}

// Render emits the budget-sweep table.
func (r *GovernResult) Render() *Table {
	t := &Table{
		Title: fmt.Sprintf("Adaptive memory governance — SF=%v, %d CPUs (served q6window under shrinking budgets, working set %d bytes)",
			r.SF, r.CPUs, r.WorkingSet),
		Columns: []string{"budget", "bytes", "requests", "rejected", "p50 ms", "p99 ms", "arena freed", "sessions trimmed", "rebalances", "level"},
		Notes: []string{
			"every success asserted identical to the serial oracle; every failure a typed 503 budget_exceeded with clamped Retry-After",
			"arena retention and the session pool shrink before any admission fails (the degradation ladder)",
		},
	}
	for _, pt := range r.Detail {
		t.Rows = append(t.Rows, []string{
			pt.Label,
			fmt.Sprintf("%d", pt.Budget),
			fmt.Sprintf("%d", pt.Requests),
			fmt.Sprintf("%d (%.0f%%)", pt.Rejected, pt.RejectedFrac*100),
			fmtMs(pt.P50Ms),
			fmtMs(pt.P99Ms),
			fmt.Sprintf("%d", pt.ArenaBytesFreed),
			fmt.Sprintf("%d", pt.SessionsTrimmed),
			fmt.Sprintf("%d", pt.Rebalances),
			pt.Level,
		})
	}
	return t
}

// WriteJSON emits the machine-readable result (BENCH_govern.json).
func (r *GovernResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
