package bench

import (
	"strings"
	"testing"
	"time"
)

// The figure runners are exercised end-to-end at a tiny scale factor:
// these tests validate experiment plumbing (series present, sane values,
// tables render), not performance.

func tinyOpts() Options {
	return Options{SF: 0.001, Seed: 42, Reps: 1, Threads: []int{1, 2}, HeapBackend: true}
}

func renderOK(t *testing.T, tab *Table) {
	t.Helper()
	var sb strings.Builder
	tab.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, tab.Title) {
		t.Fatalf("render missing title: %s", out)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("table has no rows")
	}
}

func TestFigure6(t *testing.T) {
	r, err := Figure6(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) < 5 {
		t.Fatalf("only %d sweep points", len(r.Points))
	}
	for _, p := range r.Points {
		if p.OpsPerSec <= 0 || p.QueryMs <= 0 || p.MemoryBytes <= 0 {
			t.Fatalf("degenerate point: %+v", p)
		}
	}
	renderOK(t, r.Render())
}

func TestFigure7(t *testing.T) {
	r, err := Figure7(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"pure-alloc", "concurrent-bag", "concurrent-dictionary", "smc"} {
		vals := r.Series[name]
		if len(vals) != 2 {
			t.Fatalf("%s: %d thread points", name, len(vals))
		}
		for _, v := range vals {
			if v <= 0 {
				t.Fatalf("%s: non-positive throughput", name)
			}
		}
	}
	renderOK(t, r.Render())
}

func TestFigure8(t *testing.T) {
	r, err := Figure8(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"list", "concurrent-dictionary", "smc"} {
		if len(r.Series[name]) != 2 {
			t.Fatalf("%s missing thread points", name)
		}
	}
	renderOK(t, r.Render())
}

func TestFigure10(t *testing.T) {
	r, err := Figure10(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range r.Order {
		v, ok := r.Series[name]
		if !ok {
			t.Fatalf("missing series %s", name)
		}
		for i, ms := range v {
			if ms <= 0 {
				t.Fatalf("%s[%d] non-positive", name, i)
			}
		}
	}
	renderOK(t, r.Render())
}

func TestFigure11(t *testing.T) {
	r, err := Figure11(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if r.List[i] <= 0 || r.SMCUnsafe[i] <= 0 {
			t.Fatalf("query %d degenerate", i+1)
		}
	}
	renderOK(t, r.Render())
}

func TestFigure12(t *testing.T) {
	r, err := Figure12(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if r.SMCUnsafe[i] <= 0 || r.SMCDirect[i] <= 0 || r.SMCColumnar[i] <= 0 {
			t.Fatalf("query %d degenerate", i+1)
		}
	}
	renderOK(t, r.Render())
}

func TestFigure13(t *testing.T) {
	r, err := Figure13(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if r.ColStore[i] <= 0 {
			t.Fatalf("column store query %d degenerate", i+1)
		}
	}
	renderOK(t, r.Render())
}

func TestFigureLinq(t *testing.T) {
	r, err := FigureLinq(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	renderOK(t, r.Render())
}

func TestFigure9Short(t *testing.T) {
	if testing.Short() {
		t.Skip("fixed-duration experiment")
	}
	r, err := Figure9(Options{SF: 0.0005, Seed: 42, Reps: 1, HeapBackend: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"managed-interactive", "self-managed-interactive"} {
		if len(r.Series[name]) != len(r.Sizes) {
			t.Fatalf("%s: %d points for %d sizes", name, len(r.Series[name]), len(r.Sizes))
		}
	}
	renderOK(t, r.Render())
}

func TestFigureExt(t *testing.T) {
	r, err := FigureExt(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if r.List[i] <= 0 || r.SMCUnsafe[i] <= 0 || r.ColStore[i] <= 0 {
			t.Fatalf("extended query %d degenerate", i+7)
		}
	}
	renderOK(t, r.Render())
}

func TestFigureAblation(t *testing.T) {
	r, err := FigureAblation(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if r.CSPerQuery <= 0 || r.CSPerBlock <= 0 || r.CSPerObject <= 0 {
		t.Fatal("critical-section ablation degenerate")
	}
	if r.DerefFast <= 0 || r.DerefFull <= 0 {
		t.Fatal("deref ablation degenerate")
	}
	if r.MarshalCoalesced <= 0 || r.MarshalFieldwise <= 0 {
		t.Fatal("marshal ablation degenerate")
	}
	if r.Q3Region <= 0 || r.Q3HeapMap <= 0 {
		t.Fatal("region ablation degenerate")
	}
	if len(r.BlockSizes) != len(r.ScanByBS) || len(r.BlockSizes) != len(r.LoadByBS) {
		t.Fatal("block-size sweep misaligned")
	}
	for _, tab := range r.Render() {
		renderOK(t, tab)
	}
}

func TestMedian(t *testing.T) {
	calls := 0
	d := median(3, func() { calls++; time.Sleep(time.Millisecond) })
	if calls != 3 {
		t.Fatalf("median ran fn %d times", calls)
	}
	if d < time.Millisecond/2 {
		t.Fatalf("median %v implausibly small", d)
	}
}

func TestFigureParallel(t *testing.T) {
	r, err := FigureParallel(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(r.Points))
	}
	for _, pt := range r.Points {
		if pt.Q1RowMs <= 0 || pt.Q6RowMs <= 0 {
			t.Fatalf("degenerate point %+v", pt)
		}
	}
	if r.Meta.GOMAXPROCS < 1 || r.Meta.NumCPU < 1 || r.Meta.GoVersion == "" {
		t.Fatalf("missing environment metadata: %+v", r.Meta)
	}
	renderOK(t, r.Render())
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "\"workers\": 1") {
		t.Fatalf("JSON missing worker points: %s", sb.String())
	}
	if !strings.Contains(sb.String(), "\"go_version\"") {
		t.Fatalf("JSON missing environment metadata: %s", sb.String())
	}
}

func TestFigureJoins(t *testing.T) {
	r, err := FigureJoins(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(r.Points))
	}
	for _, pt := range r.Points {
		if pt.Q3IndMs <= 0 || pt.Q5DirMs <= 0 || pt.Q10IndMs <= 0 {
			t.Fatalf("degenerate point %+v", pt)
		}
		if pt.Q7IndMs <= 0 || pt.Q8DirMs <= 0 || pt.Q9IndMs <= 0 {
			t.Fatalf("degenerate Q7–Q9 point %+v", pt)
		}
	}
	if r.Meta.GOMAXPROCS < 1 || r.Meta.NumCPU < 1 || r.Meta.GoVersion == "" {
		t.Fatalf("missing environment metadata: %+v", r.Meta)
	}
	renderOK(t, r.Render())
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "\"q3_ind_ms\"") {
		t.Fatalf("JSON missing join timings: %s", sb.String())
	}
	if !strings.Contains(sb.String(), "\"q9_dir_ms\"") {
		t.Fatalf("JSON missing Q7–Q9 timings: %s", sb.String())
	}
	if !strings.Contains(sb.String(), "\"go_version\"") {
		t.Fatalf("JSON missing environment metadata: %s", sb.String())
	}
}
