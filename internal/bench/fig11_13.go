package bench

import (
	"fmt"
	"time"

	"repro/internal/colstore"
	"repro/internal/tpch"
)

// QueryTimes holds per-query evaluation times for one engine.
type QueryTimes [6]time.Duration

// Figure11Result compares compiled queries across engines (Fig. 11).
type Figure11Result struct {
	List, Dict, SMCSafe, SMCUnsafe QueryTimes
}

// Figure11 reproduces "TPC-H Queries 1 to 6" (Fig. 11): compiled queries
// over List, ConcurrentDictionary, SMC with safe access ("SMC (C#)") and
// SMC with direct pointer access ("SMC (unsafe C#)"), reported relative
// to List.
func Figure11(o Options) (*Figure11Result, error) {
	o = o.WithDefaults()
	env, err := newQueryEnv(o)
	if err != nil {
		return nil, err
	}
	defer env.Close()
	p := tpch.DefaultParams()
	res := &Figure11Result{}

	res.List = QueryTimes{
		median(o.Reps, func() { sinkAny = tpch.ListQ1(env.mdb, p) }),
		median(o.Reps, func() { sinkAny = tpch.ListQ2(env.mdb, p) }),
		median(o.Reps, func() { sinkAny = tpch.ListQ3(env.mdb, p) }),
		median(o.Reps, func() { sinkAny = tpch.ListQ4(env.mdb, p) }),
		median(o.Reps, func() { sinkAny = tpch.ListQ5(env.mdb, p) }),
		median(o.Reps, func() { sinkAny = tpch.ListQ6(env.mdb, p) }),
	}
	res.Dict = QueryTimes{
		median(o.Reps, func() { sinkAny = tpch.DictQ1(env.ddb, p) }),
		median(o.Reps, func() { sinkAny = tpch.DictQ2(env.ddb, p) }),
		median(o.Reps, func() { sinkAny = tpch.DictQ3(env.ddb, p) }),
		median(o.Reps, func() { sinkAny = tpch.DictQ4(env.ddb, p) }),
		median(o.Reps, func() { sinkAny = tpch.DictQ5(env.ddb, p) }),
		median(o.Reps, func() { sinkAny = tpch.DictQ6(env.ddb, p) }),
	}
	db, s := env.smcIndirect, env.sIndirect
	res.SMCSafe = QueryTimes{
		median(o.Reps, func() { sinkAny = tpch.SMCSafeQ1(db, s, p) }),
		median(o.Reps, func() { sinkAny = tpch.SMCSafeQ2(db, s, p) }),
		median(o.Reps, func() { sinkAny = tpch.SMCSafeQ3(db, s, p) }),
		median(o.Reps, func() { sinkAny = tpch.SMCSafeQ4(db, s, p) }),
		median(o.Reps, func() { sinkAny = tpch.SMCSafeQ5(db, s, p) }),
		median(o.Reps, func() { sinkAny = tpch.SMCSafeQ6(db, s, p) }),
	}
	q := env.qIndirect
	res.SMCUnsafe = QueryTimes{
		median(o.Reps, func() { sinkAny = q.Q1(s, p) }),
		median(o.Reps, func() { sinkAny = q.Q2(s, p) }),
		median(o.Reps, func() { sinkAny = q.Q3(s, p) }),
		median(o.Reps, func() { sinkAny = q.Q4(s, p) }),
		median(o.Reps, func() { sinkAny = q.Q5(s, p) }),
		median(o.Reps, func() { sinkAny = q.Q6(s, p) }),
	}
	return res, nil
}

// Render emits Figure 11 (relative to List = 100).
func (r *Figure11Result) Render() *Table {
	t := &Table{
		Title:   "Figure 11 — TPC-H Q1..Q6, evaluation time relative to List (=100); ms absolute in parens",
		Columns: []string{"series", "Q1", "Q2", "Q3", "Q4", "Q5", "Q6"},
	}
	row := func(name string, qt QueryTimes) {
		cells := []string{name}
		for i := 0; i < 6; i++ {
			cells = append(cells, fmt.Sprintf("%s (%s)", rel(r.List[i], qt[i]), ms(qt[i])))
		}
		t.Rows = append(t.Rows, cells)
	}
	row("list", r.List)
	row("concurrent-dictionary", r.Dict)
	row("smc (safe)", r.SMCSafe)
	row("smc (unsafe)", r.SMCUnsafe)
	return t
}

// Figure12Result compares SMC layout variants (Fig. 12).
type Figure12Result struct {
	SMCUnsafe, SMCDirect, SMCColumnar QueryTimes
}

// Figure12 reproduces "Direct pointer and columnar storage" (Fig. 12):
// the unsafe indirect SMC is the 100% baseline; direct pointers (§6)
// help the join queries, columnar storage (§4.1) helps the scans.
func Figure12(o Options) (*Figure12Result, error) {
	o = o.WithDefaults()
	env, err := newQueryEnv(o)
	if err != nil {
		return nil, err
	}
	defer env.Close()
	p := tpch.DefaultParams()
	res := &Figure12Result{}

	runAll := func(q *tpch.SMCQueries, s sessionT) QueryTimes {
		return QueryTimes{
			median(o.Reps, func() { sinkAny = q.Q1(s, p) }),
			median(o.Reps, func() { sinkAny = q.Q2(s, p) }),
			median(o.Reps, func() { sinkAny = q.Q3(s, p) }),
			median(o.Reps, func() { sinkAny = q.Q4(s, p) }),
			median(o.Reps, func() { sinkAny = q.Q5(s, p) }),
			median(o.Reps, func() { sinkAny = q.Q6(s, p) }),
		}
	}
	res.SMCUnsafe = runAll(env.qIndirect, env.sIndirect)
	res.SMCDirect = runAll(env.qDirect, env.sDirect)
	res.SMCColumnar = runAll(env.qColumnar, env.sColumnar)
	return res, nil
}

// Render emits Figure 12 (relative to SMC unsafe = 100).
func (r *Figure12Result) Render() *Table {
	t := &Table{
		Title:   "Figure 12 — SMC variants, evaluation time relative to SMC unsafe (=100); ms absolute in parens",
		Columns: []string{"series", "Q1", "Q2", "Q3", "Q4", "Q5", "Q6"},
	}
	row := func(name string, qt QueryTimes) {
		cells := []string{name}
		for i := 0; i < 6; i++ {
			cells = append(cells, fmt.Sprintf("%s (%s)", rel(r.SMCUnsafe[i], qt[i]), ms(qt[i])))
		}
		t.Rows = append(t.Rows, cells)
	}
	row("smc", r.SMCUnsafe)
	row("smc (direct)", r.SMCDirect)
	row("smc (columnar)", r.SMCColumnar)
	return t
}

// Figure13Result compares SMCs against the column-store RDBMS stand-in.
type Figure13Result struct {
	ColStore, SMCDirect, SMCColumnar QueryTimes
}

// Figure13 reproduces "Comparison to SQL Server on a TPC-H-like
// workload" (Fig. 13): the column store with clustered date indexes wins
// where index pruning bites; SMCs win the join-heavy queries through
// reference joins.
func Figure13(o Options) (*Figure13Result, error) {
	o = o.WithDefaults()
	env, err := newQueryEnv(o)
	if err != nil {
		return nil, err
	}
	defer env.Close()
	cs := colstore.Load(env.data)
	p := tpch.DefaultParams()
	res := &Figure13Result{}

	res.ColStore = QueryTimes{
		median(o.Reps, func() { sinkAny = cs.Q1(p) }),
		median(o.Reps, func() { sinkAny = cs.Q2(p) }),
		median(o.Reps, func() { sinkAny = cs.Q3(p) }),
		median(o.Reps, func() { sinkAny = cs.Q4(p) }),
		median(o.Reps, func() { sinkAny = cs.Q5(p) }),
		median(o.Reps, func() { sinkAny = cs.Q6(p) }),
	}
	runAll := func(q *tpch.SMCQueries, s sessionT) QueryTimes {
		return QueryTimes{
			median(o.Reps, func() { sinkAny = q.Q1(s, p) }),
			median(o.Reps, func() { sinkAny = q.Q2(s, p) }),
			median(o.Reps, func() { sinkAny = q.Q3(s, p) }),
			median(o.Reps, func() { sinkAny = q.Q4(s, p) }),
			median(o.Reps, func() { sinkAny = q.Q5(s, p) }),
			median(o.Reps, func() { sinkAny = q.Q6(s, p) }),
		}
	}
	res.SMCDirect = runAll(env.qDirect, env.sDirect)
	res.SMCColumnar = runAll(env.qColumnar, env.sColumnar)
	return res, nil
}

// Render emits Figure 13 (relative to the column store = 100).
func (r *Figure13Result) Render() *Table {
	t := &Table{
		Title:   "Figure 13 — vs column-store RDBMS stand-in, relative to column store (=100); ms absolute in parens",
		Columns: []string{"series", "Q1", "Q2", "Q3", "Q4", "Q5", "Q6"},
	}
	row := func(name string, qt QueryTimes) {
		cells := []string{name}
		for i := 0; i < 6; i++ {
			cells = append(cells, fmt.Sprintf("%s (%s)", rel(r.ColStore[i], qt[i]), ms(qt[i])))
		}
		t.Rows = append(t.Rows, cells)
	}
	row("column store", r.ColStore)
	row("smc (direct)", r.SMCDirect)
	row("smc (columnar)", r.SMCColumnar)
	return t
}

// FigureLinqResult compares LINQ with compiled queries (§7 in-text).
type FigureLinqResult struct {
	Compiled, Linq QueryTimes
}

// FigureLinq measures the in-text claim that evaluating the queries with
// LINQ instead of compiled code costs 40–400% more time.
func FigureLinq(o Options) (*FigureLinqResult, error) {
	o = o.WithDefaults()
	data := tpch.Generate(o.SF, o.Seed)
	mdb := tpch.LoadManaged(data)
	p := tpch.DefaultParams()
	res := &FigureLinqResult{}
	res.Compiled = QueryTimes{
		median(o.Reps, func() { sinkAny = tpch.ListQ1(mdb, p) }),
		median(o.Reps, func() { sinkAny = tpch.ListQ2(mdb, p) }),
		median(o.Reps, func() { sinkAny = tpch.ListQ3(mdb, p) }),
		median(o.Reps, func() { sinkAny = tpch.ListQ4(mdb, p) }),
		median(o.Reps, func() { sinkAny = tpch.ListQ5(mdb, p) }),
		median(o.Reps, func() { sinkAny = tpch.ListQ6(mdb, p) }),
	}
	res.Linq = QueryTimes{
		median(o.Reps, func() { sinkAny = tpch.LinqQ1(mdb, p) }),
		median(o.Reps, func() { sinkAny = tpch.LinqQ2(mdb, p) }),
		median(o.Reps, func() { sinkAny = tpch.LinqQ3(mdb, p) }),
		median(o.Reps, func() { sinkAny = tpch.LinqQ4(mdb, p) }),
		median(o.Reps, func() { sinkAny = tpch.LinqQ5(mdb, p) }),
		median(o.Reps, func() { sinkAny = tpch.LinqQ6(mdb, p) }),
	}
	return res, nil
}

// Render emits the LINQ-vs-compiled table.
func (r *FigureLinqResult) Render() *Table {
	t := &Table{
		Title:   "§7 in-text — LINQ vs compiled queries over List, relative to compiled (=100)",
		Columns: []string{"series", "Q1", "Q2", "Q3", "Q4", "Q5", "Q6"},
		Notes:   []string{"paper reports LINQ 140..500 (i.e., 40%..400% slower)"},
	}
	row := func(name string, qt QueryTimes) {
		cells := []string{name}
		for i := 0; i < 6; i++ {
			cells = append(cells, fmt.Sprintf("%s (%s)", rel(r.Compiled[i], qt[i]), ms(qt[i])))
		}
		t.Rows = append(t.Rows, cells)
	}
	row("compiled", r.Compiled)
	row("linq", r.Linq)
	return t
}
