package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/decimal"
	"repro/internal/tpch"
)

// The share figure (beyond-paper): cooperative scan sharing under
// query-dominated concurrency. N identical-shape Q6-style windowed
// revenue scans run concurrently, once through independent parallel
// scans (every query pays its own decision pass, snapshot and trip
// through memory) and once through the scan-share layer (queries batch
// onto one shared pass; late arrivals catch up their missed prefix
// privately). Every query's sum is asserted byte-identical between the
// two modes, so the figure can only measure a semantics-preserving
// optimization; the physical-visit counters expose the mechanism — the
// shared batch's BlocksScanned stays near one query's count instead of
// scaling with N.

// SharePoint is one concurrency level's measurement.
type SharePoint struct {
	Queries int `json:"queries"`
	// Batch wall time (all queries launched together, last one home) and
	// the median single-query latency inside the batch, per mode.
	SharedWallMs float64 `json:"shared_wall_ms"`
	IndepWallMs  float64 `json:"indep_wall_ms"`
	SharedP50Ms  float64 `json:"shared_p50_ms"`
	IndepP50Ms   float64 `json:"indep_p50_ms"`
	// Aggregate throughput, queries per second.
	SharedQPS float64 `json:"shared_qps"`
	IndepQPS  float64 `json:"indep_qps"`
	// Physical constrained-scan block visits per batch (one instrumented
	// run): independent scans pay ~N× one query's visits, the shared
	// batch ~1× plus catch-up.
	SharedBlocksScanned int64 `json:"shared_blocks_scanned"`
	IndepBlocksScanned  int64 `json:"indep_blocks_scanned"`
	// BlocksRatio is SharedBlocksScanned over one query's solo visit
	// count — the "one trip through memory" claim, measured.
	BlocksRatio float64 `json:"blocks_ratio"`
	// Share-layer activity during the instrumented shared batch.
	SharedPasses    int64 `json:"shared_passes"`
	AttachedQueries int64 `json:"attached_queries"`
	CatchUpBlocks   int64 `json:"catchup_blocks"`
}

// ShareResult is the scan-sharing figure. Points carries one flat
// workers=1 gate point whose "<mode>_<N>q_ms" keys the benchdiff gate
// diffs (batch wall times at the low concurrency levels; the higher
// levels live in Detail only, where smoke-rep noise would flake a ±30%
// gate).
type ShareResult struct {
	SF     float64              `json:"sf"`
	CPUs   int                  `json:"cpus"`
	Reps   int                  `json:"reps"`
	Meta   Meta                 `json:"meta"`
	Points []map[string]float64 `json:"points"`
	Detail []SharePoint         `json:"detail"`
}

// shareConcurrency is the figure's sweep: one query (the no-sharing
// sanity point), a typical dashboard fan-out, and two query-storm
// levels.
var shareConcurrency = []int{1, 8, 64, 512}

// FigureShare measures shared vs independent execution of N concurrent
// Q6-style windowed scans (workers=1 per query — concurrency comes from
// the queries, not from fan-out inside one) over a date-sorted lineitem
// heap with the window pushed down onto the block synopses.
func FigureShare(o Options) (*ShareResult, error) {
	o = o.WithDefaults()
	data := tpch.Generate(o.SF, o.Seed)

	// Date-sorted load, same shape as the prune figure: synopses are
	// tight, so pushdown really skips blocks and the rider-side bitmap
	// composition is exercised.
	sorted := *data
	sorted.Lineitems = append([]tpch.LineitemRow(nil), data.Lineitems...)
	sort.SliceStable(sorted.Lineitems, func(i, j int) bool {
		return sorted.Lineitems[i].ShipDate < sorted.Lineitems[j].ShipDate
	})
	n := len(sorted.Lineitems)
	if n == 0 {
		return nil, fmt.Errorf("empty lineitem table at SF=%v", o.SF)
	}
	minDate := sorted.Lineitems[0].ShipDate
	hi := sorted.Lineitems[n/2].ShipDate // ~50% window: pruning and scanning both matter

	rt, err := core.NewRuntime(core.Options{HeapBackend: o.HeapBackend})
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	s := rt.MustSession()
	defer s.Close()
	db, err := tpch.LoadSMC(rt, s, &sorted, core.RowIndirect)
	if err != nil {
		return nil, err
	}
	q := tpch.NewSMCQueries(db)
	oracle := q.Q6WindowPar(s, minDate, hi, 1, true)

	// runBatch launches N concurrent queries and returns the batch wall
	// time and each query's own latency; every sum is checked against the
	// serial oracle, so shared and independent batches are exactly-equal
	// by construction or the figure fails.
	runBatch := func(nq int, shared bool) (time.Duration, []time.Duration, error) {
		sessions := make([]*core.Session, nq)
		for i := range sessions {
			sessions[i] = rt.MustSession()
		}
		defer func() {
			for _, qs := range sessions {
				qs.Close()
			}
		}()
		lat := make([]time.Duration, nq)
		errs := make([]error, nq)
		sums := make([]decimal.Dec128, nq)
		var start, done sync.WaitGroup
		start.Add(1)
		done.Add(nq)
		for i := 0; i < nq; i++ {
			go func(i int) {
				defer done.Done()
				start.Wait()
				t0 := time.Now()
				var sum decimal.Dec128
				var err error
				if shared {
					sum, err = q.Q6WindowSharedCtx(context.Background(), sessions[i], minDate, hi, 1, true)
				} else {
					sum, err = q.Q6WindowParCtx(context.Background(), sessions[i], minDate, hi, 1, true)
				}
				lat[i] = time.Since(t0)
				sums[i], errs[i] = sum, err
			}(i)
		}
		runtime.GC()
		t0 := time.Now()
		start.Done()
		done.Wait()
		wall := time.Since(t0)
		for i := 0; i < nq; i++ {
			if errs[i] != nil {
				return 0, nil, fmt.Errorf("query %d/%d (shared=%v): %w", i, nq, shared, errs[i])
			}
			if sums[i] != oracle {
				return 0, nil, fmt.Errorf("query %d/%d (shared=%v): sum %v diverges from serial oracle %v",
					i, nq, shared, sums[i], oracle)
			}
		}
		return wall, lat, nil
	}
	p50 := func(lat []time.Duration) time.Duration {
		s := append([]time.Duration(nil), lat...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		return s[len(s)/2]
	}

	// One query's solo constrained visit count is the 1× baseline for the
	// blocks ratio.
	before := rt.StatsSnapshot()
	if _, _, err := runBatch(1, false); err != nil {
		return nil, err
	}
	soloScanned := rt.StatsSnapshot().BlocksScanned - before.BlocksScanned
	if soloScanned == 0 {
		return nil, fmt.Errorf("solo windowed scan visited 0 blocks — degenerate window [%v,%v]", minDate, hi)
	}

	res := &ShareResult{SF: o.SF, CPUs: runtime.NumCPU(), Reps: o.Reps, Meta: CurrentMeta()}
	gate := map[string]float64{"workers": 1}
	res.Points = []map[string]float64{gate}
	for _, nq := range shareConcurrency {
		pt := SharePoint{Queries: nq}

		// Instrumented runs pin the physical accounting per mode.
		before := rt.StatsSnapshot()
		if _, _, err := runBatch(nq, true); err != nil {
			return nil, err
		}
		after := rt.StatsSnapshot()
		pt.SharedBlocksScanned = after.BlocksScanned - before.BlocksScanned
		pt.SharedPasses = after.SharedPasses - before.SharedPasses
		pt.AttachedQueries = after.AttachedQueries - before.AttachedQueries
		pt.CatchUpBlocks = after.CatchUpBlocks - before.CatchUpBlocks
		pt.BlocksRatio = float64(pt.SharedBlocksScanned) / float64(soloScanned)
		before = rt.StatsSnapshot()
		if _, _, err := runBatch(nq, false); err != nil {
			return nil, err
		}
		pt.IndepBlocksScanned = rt.StatsSnapshot().BlocksScanned - before.BlocksScanned

		// Timed runs: minimum batch wall over reps (the noise-robust
		// best-observed statistic — a median of 2 smoke reps would pick
		// the worse rep and bias the benchdiff gate upward), median
		// per-query p50 across reps.
		measure := func(shared bool) (float64, float64, error) {
			walls := make([]time.Duration, 0, o.Reps)
			p50s := make([]time.Duration, 0, o.Reps)
			for r := 0; r < o.Reps; r++ {
				wall, lat, err := runBatch(nq, shared)
				if err != nil {
					return 0, 0, err
				}
				walls = append(walls, wall)
				p50s = append(p50s, p50(lat))
			}
			sort.Slice(walls, func(i, j int) bool { return walls[i] < walls[j] })
			sort.Slice(p50s, func(i, j int) bool { return p50s[i] < p50s[j] })
			return msF(walls[0]), msF(p50s[len(p50s)/2]), nil
		}
		if pt.SharedWallMs, pt.SharedP50Ms, err = measure(true); err != nil {
			return nil, err
		}
		if pt.IndepWallMs, pt.IndepP50Ms, err = measure(false); err != nil {
			return nil, err
		}
		if pt.SharedWallMs > 0 {
			pt.SharedQPS = float64(nq) / (pt.SharedWallMs / 1000)
		}
		if pt.IndepWallMs > 0 {
			pt.IndepQPS = float64(nq) / (pt.IndepWallMs / 1000)
		}
		if nq <= 8 {
			gate[fmt.Sprintf("shared_%dq_ms", nq)] = pt.SharedWallMs
			gate[fmt.Sprintf("indep_%dq_ms", nq)] = pt.IndepWallMs
		}
		res.Detail = append(res.Detail, pt)
	}
	return res, nil
}

// Render emits the sweep table.
func (r *ShareResult) Render() *Table {
	t := &Table{
		Title:   fmt.Sprintf("Cooperative scan sharing — SF=%v, %d CPUs (Q6-style window, workers=1 per query)", r.SF, r.CPUs),
		Columns: []string{"queries", "shared ms", "indep ms", "shared p50", "indep p50", "shared qps", "indep qps", "blocks ×solo", "attached", "catchup"},
		Notes: []string{
			"shared and independent sums asserted identical per query",
			"blocks ×solo = shared batch's physical visits over one query's solo visits (~1 = one trip through memory)",
		},
	}
	for _, pt := range r.Detail {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", pt.Queries),
			fmtMs(pt.SharedWallMs),
			fmtMs(pt.IndepWallMs),
			fmtMs(pt.SharedP50Ms),
			fmtMs(pt.IndepP50Ms),
			fmt.Sprintf("%.0f", pt.SharedQPS),
			fmt.Sprintf("%.0f", pt.IndepQPS),
			fmt.Sprintf("%.2f", pt.BlocksRatio),
			fmt.Sprintf("%d", pt.AttachedQueries),
			fmt.Sprintf("%d", pt.CatchUpBlocks),
		})
	}
	return t
}

// WriteJSON emits the machine-readable result (BENCH_share.json).
func (r *ShareResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
