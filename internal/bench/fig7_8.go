package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/managed"
	"repro/internal/tpch"
)

// Figure7Result holds allocation throughput per series and thread count.
type Figure7Result struct {
	Threads []int
	// Series name -> per-thread-count millions of allocations per second.
	Series map[string][]float64
}

// Figure7 reproduces "Batch allocation throughput" (Fig. 7): allocating
// lineitem objects into (a) nothing (pure allocation, kept reachable in
// thread-local slices as in the paper's footnote), (b) a ConcurrentBag,
// (c) a ConcurrentDictionary, and (d) an SMC. Go has a single concurrent
// GC mode, so the paper's interactive/batch split collapses into one
// managed series each (see DESIGN.md substitutions).
func Figure7(o Options) (*Figure7Result, error) {
	o = o.WithDefaults()
	data := tpch.Generate(o.SF, o.Seed)
	rows := data.Lineitems
	res := &Figure7Result{Threads: o.Threads, Series: map[string][]float64{}}

	perThread := len(rows)
	run := func(threads int, fn func(tid int, rows []tpch.LineitemRow)) float64 {
		var wg sync.WaitGroup
		t0 := time.Now()
		for t := 0; t < threads; t++ {
			wg.Add(1)
			go func(tid int) {
				defer wg.Done()
				fn(tid, rows)
			}(t)
		}
		wg.Wait()
		el := time.Since(t0)
		return float64(perThread*threads) / el.Seconds() / 1e6
	}

	for _, th := range o.Threads {
		// Pure allocation: heap objects kept in a pre-allocated
		// thread-local slice ("pre-allocated, thread-local arrays
		// prevent objects from being garbage collected").
		res.Series["pure-alloc"] = append(res.Series["pure-alloc"], run(th, func(tid int, rows []tpch.LineitemRow) {
			keep := make([]*tpch.MLineitem, len(rows))
			for i := range rows {
				keep[i] = rowToMLineitem(&rows[i])
			}
			storeSink(keep)
		}))

		bag := managed.NewConcurrentBag[tpch.MLineitem]()
		res.Series["concurrent-bag"] = append(res.Series["concurrent-bag"], run(th, func(tid int, rows []tpch.LineitemRow) {
			for i := range rows {
				bag.Add(rowToMLineitem(&rows[i]))
			}
		}))

		dict := managed.NewIntDictionary[tpch.MLineitem]()
		res.Series["concurrent-dictionary"] = append(res.Series["concurrent-dictionary"], run(th, func(tid int, rows []tpch.LineitemRow) {
			base := int64(tid) << 40
			for i := range rows {
				dict.Store(base|int64(i), rowToMLineitem(&rows[i]))
			}
		}))

		rt, err := core.NewRuntime(core.Options{HeapBackend: o.HeapBackend})
		if err != nil {
			return nil, err
		}
		coll, err := core.NewCollection[tpch.SLineitem](rt, "lineitem", core.RowIndirect)
		if err != nil {
			rt.Close()
			return nil, err
		}
		res.Series["smc"] = append(res.Series["smc"], run(th, func(tid int, rows []tpch.LineitemRow) {
			s := rt.MustSession()
			defer s.Close()
			for i := range rows {
				l := rowToSLineitem(&rows[i])
				if _, err := coll.Add(s, &l); err != nil {
					panic(err)
				}
			}
		}))
		rt.Close()
	}
	return res, nil
}

var sinkAny any

// storeSink publishes a value from concurrent measurement goroutines
// (plain sinkAny writes would race).
var sinkAtomic atomic.Value

func storeSink(v any) { sinkAtomic.Store(v) }

func rowToMLineitem(l *tpch.LineitemRow) *tpch.MLineitem {
	return &tpch.MLineitem{
		OrderKey: l.OrderKey, LineNumber: l.LineNumber,
		Quantity: l.Quantity, ExtendedPrice: l.ExtendedPrice,
		Discount: l.Discount, Tax: l.Tax,
		ReturnFlag: l.ReturnFlag, LineStatus: l.LineStatus,
		ShipDate: l.ShipDate, CommitDate: l.CommitDate, ReceiptDate: l.ReceiptDate,
		ShipInstruct: l.ShipInstruct, ShipMode: l.ShipMode, Comment: l.Comment,
	}
}

// Render emits the Figure 7 table (millions of allocations per second).
func (r *Figure7Result) Render() *Table {
	t := &Table{
		Title:   "Figure 7 — batch allocation throughput (million objects/s)",
		Columns: append([]string{"series"}, threadCols(r.Threads)...),
		Notes: []string{
			"paper series 'interactive'/'batch' collapse: Go has one concurrent GC mode",
		},
	}
	for _, name := range []string{"pure-alloc", "concurrent-bag", "concurrent-dictionary", "smc"} {
		row := []string{name}
		for _, v := range r.Series[name] {
			row = append(row, fmt.Sprintf("%.2f", v))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

func threadCols(threads []int) []string {
	out := make([]string, len(threads))
	for i, t := range threads {
		out[i] = fmt.Sprintf("%d thread(s)", t)
	}
	return out
}

// Figure8Result holds refresh-stream throughput per series/threads.
type Figure8Result struct {
	Threads []int
	Series  map[string][]float64 // streams per minute
}

// Figure8 reproduces "Refresh stream throughput" (Fig. 8): each thread
// alternates two stream types — inserting 0.1% of the initial population,
// and enumerating the collection removing a 0.1% batch selected by a
// predicate on orderkey (provided as a hash set, as in the paper).
func Figure8(o Options) (*Figure8Result, error) {
	o = o.WithDefaults()
	data := tpch.Generate(o.SF, o.Seed)
	res := &Figure8Result{Threads: o.Threads, Series: map[string][]float64{}}
	n := len(data.Lineitems)
	batch := n / 1000
	if batch < 1 {
		batch = 1
	}
	const streamPairs = 4 // insert+remove pairs per thread per run

	// Build the per-run orderkey victim sets up front.
	victimSets := func(runs int) []map[int64]bool {
		sets := make([]map[int64]bool, runs)
		for r := range sets {
			m := make(map[int64]bool, batch)
			for i := 0; i < batch; i++ {
				m[data.Lineitems[(r*batch+i)%n].OrderKey] = true
			}
			sets[r] = m
		}
		return sets
	}

	for _, th := range o.Threads {
		// --- List with a coarse lock (List<T> is not thread-safe). ---
		{
			var mu sync.Mutex
			list := managed.NewList[tpch.MLineitem](n)
			for i := range data.Lineitems {
				list.AddPtr(rowToMLineitem(&data.Lineitems[i]))
			}
			sets := victimSets(th * streamPairs)
			var wg sync.WaitGroup
			t0 := time.Now()
			for t := 0; t < th; t++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					for rIdx := 0; rIdx < streamPairs; rIdx++ {
						// Insert stream.
						mu.Lock()
						for i := 0; i < batch; i++ {
							list.AddPtr(rowToMLineitem(&data.Lineitems[(tid*batch+i)%n]))
						}
						mu.Unlock()
						// Remove stream (single enumeration, hash-set predicate).
						set := sets[tid*streamPairs+rIdx]
						left := batch
						mu.Lock()
						list.RemoveWhere(func(l *tpch.MLineitem) bool {
							if left > 0 && set[l.OrderKey] {
								left--
								return true
							}
							return false
						})
						mu.Unlock()
					}
				}(t)
			}
			wg.Wait()
			el := time.Since(t0)
			res.Series["list"] = append(res.Series["list"],
				float64(2*streamPairs*th)/el.Minutes())
		}

		// --- ConcurrentDictionary. ---
		{
			dict := managed.NewIntDictionary[tpch.MLineitem]()
			for i := range data.Lineitems {
				l := &data.Lineitems[i]
				dict.Store(tpch.LineKey(l.OrderKey, l.LineNumber)<<8, rowToMLineitem(l))
			}
			sets := victimSets(th * streamPairs)
			var wg sync.WaitGroup
			t0 := time.Now()
			for t := 0; t < th; t++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					for rIdx := 0; rIdx < streamPairs; rIdx++ {
						base := int64(tid)<<48 | int64(rIdx)<<40
						for i := 0; i < batch; i++ {
							dict.Store(base|int64(i), rowToMLineitem(&data.Lineitems[(tid*batch+i)%n]))
						}
						set := sets[tid*streamPairs+rIdx]
						left := batch
						var victims []int64
						dict.Range(func(k int64, l *tpch.MLineitem) bool {
							if left > 0 && set[l.OrderKey] {
								victims = append(victims, k)
								left--
							}
							return left > 0
						})
						for _, k := range victims {
							dict.Delete(k)
						}
					}
				}(t)
			}
			wg.Wait()
			el := time.Since(t0)
			res.Series["concurrent-dictionary"] = append(res.Series["concurrent-dictionary"],
				float64(2*streamPairs*th)/el.Minutes())
		}

		// --- SMC. ---
		{
			rt, err := core.NewRuntime(core.Options{HeapBackend: o.HeapBackend})
			if err != nil {
				return nil, err
			}
			coll, err := core.NewCollection[tpch.SLineitem](rt, "lineitem", core.RowIndirect)
			if err != nil {
				rt.Close()
				return nil, err
			}
			ls := rt.MustSession()
			for i := range data.Lineitems {
				l := rowToSLineitem(&data.Lineitems[i])
				if _, err := coll.Add(ls, &l); err != nil {
					rt.Close()
					return nil, err
				}
			}
			sets := victimSets(th * streamPairs)
			var wg sync.WaitGroup
			t0 := time.Now()
			for t := 0; t < th; t++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					s := rt.MustSession()
					defer s.Close()
					for rIdx := 0; rIdx < streamPairs; rIdx++ {
						for i := 0; i < batch; i++ {
							l := rowToSLineitem(&data.Lineitems[(tid*batch+i)%n])
							if _, err := coll.Add(s, &l); err != nil {
								panic(err)
							}
						}
						set := sets[tid*streamPairs+rIdx]
						left := batch
						var victims []core.Ref[tpch.SLineitem]
						coll.ForEach(s, func(r core.Ref[tpch.SLineitem], l *tpch.SLineitem) bool {
							if left > 0 && set[l.OrderKey] {
								victims = append(victims, r)
								left--
							}
							return left > 0
						})
						for _, v := range victims {
							// Concurrent removals may race on shared
							// victims; nulls are expected then.
							_ = coll.Remove(s, v)
						}
					}
				}(t)
			}
			wg.Wait()
			el := time.Since(t0)
			res.Series["smc"] = append(res.Series["smc"],
				float64(2*streamPairs*th)/el.Minutes())
			ls.Close()
			rt.Close()
		}
	}
	return res, nil
}

// Render emits the Figure 8 table (streams per minute).
func (r *Figure8Result) Render() *Table {
	t := &Table{
		Title:   "Figure 8 — refresh stream throughput (streams/minute)",
		Columns: append([]string{"series"}, threadCols(r.Threads)...),
	}
	for _, name := range []string{"list", "concurrent-dictionary", "smc"} {
		row := []string{name}
		for _, v := range r.Series[name] {
			row = append(row, fmt.Sprintf("%.1f", v))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
