// Package bench regenerates every figure of the paper's evaluation (§7).
// Each FigureN function runs the corresponding experiment and returns a
// structured result with a text rendering that mirrors the paper's series.
//
// The experiments are sized by scale factor; the paper uses SF=3 on a
// 4-core/16GB machine, while the defaults here are sized for CI-class
// hardware. The shapes (who wins, by what factor, where crossovers fall)
// are the reproduction target, not absolute numbers — see EXPERIMENTS.md.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/tpch"
)

// Options sizes the experiments.
type Options struct {
	// SF is the TPC-H scale factor for query benches (default 0.01).
	SF float64
	// Seed fixes the generator.
	Seed uint64
	// Threads lists the thread counts for Figures 7 and 8.
	Threads []int
	// Reps is the number of repetitions per measurement (median taken).
	Reps int
	// HeapBackend forces the portable off-heap backend.
	HeapBackend bool
}

// WithDefaults fills unset fields.
func (o Options) WithDefaults() Options {
	if o.SF == 0 {
		o.SF = 0.01
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if len(o.Threads) == 0 {
		o.Threads = []int{1, 2, 4}
	}
	if o.Reps == 0 {
		o.Reps = 3
	}
	return o
}

// Meta stamps a figure's machine-readable output with the environment it
// was measured in, so a scaling curve is self-describing: a flat curve
// recorded on a 1-CPU container reads as "1 CPU", not as a regression.
type Meta struct {
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	GoVersion  string `json:"go_version"`
}

// CurrentMeta captures the measuring environment.
func CurrentMeta() Meta {
	return Meta{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
	}
}

// median runs fn reps times and returns the median duration.
func median(reps int, fn func()) time.Duration {
	times := make([]time.Duration, 0, reps)
	for i := 0; i < reps; i++ {
		runtime.GC()
		t0 := time.Now()
		fn()
		times = append(times, time.Since(t0))
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2]
}

// Table is a printable result grid.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

func ms(d time.Duration) string { return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000) }

func rel(base, d time.Duration) string {
	if base == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f", 100*float64(d)/float64(base))
}

// sessionT abbreviates the session type in measurement helpers.
type sessionT = *core.Session

// queryEnv bundles every loaded engine at one scale factor.
type queryEnv struct {
	data *tpch.Dataset
	mdb  *tpch.ManagedDB
	ddb  *tpch.DictDB

	rtIndirect, rtDirect, rtColumnar    *core.Runtime
	sIndirect, sDirect, sColumnar       *core.Session
	smcIndirect, smcDirect, smcColumnar *tpch.SMCDB
	qIndirect, qDirect, qColumnar       *tpch.SMCQueries
}

func newQueryEnv(o Options) (*queryEnv, error) {
	e := &queryEnv{data: tpch.Generate(o.SF, o.Seed)}
	e.mdb = tpch.LoadManaged(e.data)
	e.ddb = tpch.LoadDict(e.mdb)

	load := func(layout core.Layout) (*core.Runtime, *core.Session, *tpch.SMCDB, *tpch.SMCQueries, error) {
		rt, err := core.NewRuntime(core.Options{HeapBackend: o.HeapBackend})
		if err != nil {
			return nil, nil, nil, nil, err
		}
		s, err := rt.NewSession()
		if err != nil {
			return nil, nil, nil, nil, err
		}
		db, err := tpch.LoadSMC(rt, s, e.data, layout)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		return rt, s, db, tpch.NewSMCQueries(db), nil
	}
	var err error
	if e.rtIndirect, e.sIndirect, e.smcIndirect, e.qIndirect, err = load(core.RowIndirect); err != nil {
		return nil, err
	}
	if e.rtDirect, e.sDirect, e.smcDirect, e.qDirect, err = load(core.RowDirect); err != nil {
		return nil, err
	}
	if e.rtColumnar, e.sColumnar, e.smcColumnar, e.qColumnar, err = load(core.Columnar); err != nil {
		return nil, err
	}
	return e, nil
}

func (e *queryEnv) Close() {
	for _, s := range []*core.Session{e.sIndirect, e.sDirect, e.sColumnar} {
		if s != nil {
			s.Close()
		}
	}
	for _, rt := range []*core.Runtime{e.rtIndirect, e.rtDirect, e.rtColumnar} {
		if rt != nil {
			rt.Close()
		}
	}
}
