package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"slices"
	"sort"

	"repro/internal/core"
	"repro/internal/tpch"
	"repro/internal/types"
)

// The cluster figure (beyond-paper): synopsis-aware clustered compaction
// versus size-only packing, swept over repeated churn → maintenance
// cycles, plus the cross-edge semi-join pruning the clustered key
// domains enable on the compiled join queries.
//
// Part one — steady-state skip-scan recovery. Both packing modes start
// from the same churned retention heap (upsert scatter + date trim, as
// in the prune figure) and then run identical churn → compaction cycles:
// each cycle upserts a random 30% sample (re-adds land in reclaimed
// slots heap-wide, widening bounds) and trims a random 45% (retention
// attrition, which keeps blocks under the compaction threshold so every
// maintenance pass can rewrite them). Size-only packing rebuilds target
// bounds exactly but over arbitrary (fullest-first) source mixes, so
// each target spans most of the surviving key domain; clustered packing
// groups key-adjacent blocks and moves rows in key order, so targets
// recover tight, near-disjoint ranges at every pass. The measured
// quantity is the pruned fraction (and latency) of a windowed Q6-style
// scan at 1% / 10% selectivity over the *surviving* ship-date domain,
// re-derived from the live rows each cycle so selectivity stays honest
// as retention shrinks the heap.
//
// Part two — cross-edge pruning. On a fresh (unchurned) heap the
// pipeline drivers distill the order-side key set of Q3/Q10 (and Q4's
// late-lineitem key set) into a mem.KeySetPredicate over the next edge's
// key synopses; the figure reports the pruned parallel latency against
// the serial unpruned oracle plus the KeySetPruned/SynopsisOverlap
// decision counts, with results asserted identical.

// ClusterPoint is one (packing, cycle, selectivity) measurement of the
// churn → maintenance sweep.
type ClusterPoint struct {
	Workers        int     `json:"workers"`
	Packing        string  `json:"packing"` // size | cluster
	Cycle          int     `json:"cycle"`   // maintenance passes completed
	SelectivityPct float64 `json:"selectivity_pct"`
	Rows           int     `json:"rows"` // surviving lineitem rows
	// PrunedMs / UnprunedMs are the same windowed scan with and without
	// predicate pushdown.
	PrunedMs   float64 `json:"pruned_ms"`
	UnprunedMs float64 `json:"unpruned_ms"`
	Speedup    float64 `json:"speedup"`
	// BlocksTotal is the lineitem block count at measurement time;
	// BlocksPruned/BlocksScanned are one pruned run's synopsis decisions.
	BlocksTotal   int     `json:"blocks_total"`
	BlocksPruned  int64   `json:"blocks_pruned"`
	BlocksScanned int64   `json:"blocks_scanned"`
	PrunedFrac    float64 `json:"pruned_frac"`
}

// ClusterJoinPoint is one cross-edge semi-join pruning measurement.
type ClusterJoinPoint struct {
	Workers int    `json:"workers"`
	Query   string `json:"query"` // q3 | q4 | q10
	// PrunedMs is the pipeline driver with key-set pruning at workers=1;
	// SerialMs is the serial unpruned oracle producing identical rows.
	PrunedMs float64 `json:"pruned_ms"`
	SerialMs float64 `json:"serial_ms"`
	Speedup  float64 `json:"speedup"`
	// One instrumented run's key-set decisions: blocks pruned because no
	// distilled key range overlapped their key synopsis, and blocks
	// admitted with at least one overlapping key-set constraint.
	KeySetPruned    int64 `json:"keyset_pruned"`
	SynopsisOverlap int64 `json:"synopsis_overlap"`
}

// ClusterResult is the clustered-compaction figure. Points holds one
// flat workers=1 point with every series as its own metric key, so the
// benchdiff gate covers the whole sweep.
type ClusterResult struct {
	SF     float64              `json:"sf"`
	CPUs   int                  `json:"cpus"`
	Reps   int                  `json:"reps"`
	Meta   Meta                 `json:"meta"`
	Points []map[string]float64 `json:"points"`
	Sweep  []ClusterPoint       `json:"sweep"`
	Joins  []ClusterJoinPoint   `json:"joins"`
}

// sinkRows defeats dead-code elimination in the join measurements.
var sinkRows int

// clusterMaintThreshold is the cluster sweep's compaction threshold: a
// maintenance-aggressive deployment where every churned block stays
// rewritable (the default 30% models lazier setups). The 30% upsert
// scatter leaves blocks near 70% occupancy, so a 0.85 cutoff admits
// them all to the very first maintenance pass — the pass the steady-
// state guarantee is stated over.
const clusterMaintThreshold = 0.85

// newClusterEnv loads the date-sorted dataset row-indirect under the
// given packing mode and applies the prune figure's initial churn: a 30%
// upsert scatter followed by a retention trim past cutoff. Both packing
// series see the identical (seeded) churn.
func newClusterEnv(o Options, data *tpch.Dataset, cutoff types.Date, packing core.PackingMode) (*pruneEnv, error) {
	rt, err := core.NewRuntime(core.Options{
		HeapBackend:         o.HeapBackend,
		CompactionPacking:   packing,
		CompactionThreshold: clusterMaintThreshold,
	})
	if err != nil {
		return nil, err
	}
	s, err := rt.NewSession()
	if err != nil {
		rt.Close()
		return nil, err
	}
	db, err := tpch.LoadSMC(rt, s, data, core.RowIndirect)
	if err != nil {
		s.Close()
		rt.Close()
		return nil, err
	}
	env := &pruneEnv{rt: rt, s: s, db: db, q: tpch.NewSMCQueries(db)}

	type held struct {
		ref core.Ref[tpch.SLineitem]
		row tpch.SLineitem
	}
	var rows []held
	db.Lineitems.ForEach(s, func(r core.Ref[tpch.SLineitem], v *tpch.SLineitem) bool {
		rows = append(rows, held{ref: r, row: *v})
		return true
	})
	rng := rand.New(rand.NewSource(int64(o.Seed)))
	perm := rng.Perm(len(rows))
	for _, i := range perm[:len(rows)*30/100] {
		if err := db.Lineitems.Remove(s, rows[i].ref); err != nil {
			env.Close()
			return nil, err
		}
		if _, err := db.Lineitems.Add(s, &rows[i].row); err != nil {
			env.Close()
			return nil, err
		}
	}
	var victims []core.Ref[tpch.SLineitem]
	db.Lineitems.ForEach(s, func(r core.Ref[tpch.SLineitem], v *tpch.SLineitem) bool {
		if v.ShipDate < cutoff {
			victims = append(victims, r)
		}
		return true
	})
	for _, r := range victims {
		if err := db.Lineitems.Remove(s, r); err != nil {
			env.Close()
			return nil, err
		}
	}
	return env, nil
}

// clusterChurn runs one steady-state churn cycle: upsert-scatter a
// random 30% sample (re-adds land in reclaimed slots heap-wide, widening
// bounds) and trim a random 45% (retention attrition). Deterministic
// under the caller's rng, so both packing series churn identically.
func clusterChurn(env *pruneEnv, rng *rand.Rand) error {
	type held struct {
		ref core.Ref[tpch.SLineitem]
		row tpch.SLineitem
	}
	var rows []held
	env.db.Lineitems.ForEach(env.s, func(r core.Ref[tpch.SLineitem], v *tpch.SLineitem) bool {
		rows = append(rows, held{ref: r, row: *v})
		return true
	})
	perm := rng.Perm(len(rows))
	for _, i := range perm[:len(rows)*30/100] {
		if err := env.db.Lineitems.Remove(env.s, rows[i].ref); err != nil {
			return err
		}
		if _, err := env.db.Lineitems.Add(env.s, &rows[i].row); err != nil {
			return err
		}
	}
	var victims []core.Ref[tpch.SLineitem]
	env.db.Lineitems.ForEach(env.s, func(r core.Ref[tpch.SLineitem], v *tpch.SLineitem) bool {
		if rng.Intn(100) < 45 {
			victims = append(victims, r)
		}
		return true
	})
	for _, r := range victims {
		if err := env.db.Lineitems.Remove(env.s, r); err != nil {
			return err
		}
	}
	return nil
}

// survivorDates snapshots the surviving ship dates, sorted.
func survivorDates(env *pruneEnv) []types.Date {
	var dates []types.Date
	env.db.Lineitems.ForEach(env.s, func(_ core.Ref[tpch.SLineitem], v *tpch.SLineitem) bool {
		dates = append(dates, v.ShipDate)
		return true
	})
	sort.Slice(dates, func(i, j int) bool { return dates[i] < dates[j] })
	return dates
}

// clusterCycles is the number of churn → maintenance cycles measured.
const clusterCycles = 3

// FigureCluster measures synopsis-aware clustered compaction against
// size-only packing across churn → maintenance cycles (pruned fraction
// and latency of 1%/10%-selectivity windowed scans over the surviving
// date domain, results asserted identical to the unpruned runs), then
// the cross-edge key-set pruning of Q3/Q4/Q10 against their serial
// oracles. All points run at workers=1 (the stable serial baseline the
// perf gate diffs).
func FigureCluster(o Options) (*ClusterResult, error) {
	o = o.WithDefaults()
	data := tpch.Generate(o.SF, o.Seed)

	sorted := *data
	sorted.Lineitems = append([]tpch.LineitemRow(nil), data.Lineitems...)
	sort.SliceStable(sorted.Lineitems, func(i, j int) bool {
		return sorted.Lineitems[i].ShipDate < sorted.Lineitems[j].ShipDate
	})
	n := len(sorted.Lineitems)
	if n == 0 {
		return nil, fmt.Errorf("empty lineitem table at SF=%v", o.SF)
	}
	retention := sorted.Lineitems[min(n*75/100, n-1)].ShipDate

	res := &ClusterResult{SF: o.SF, CPUs: runtime.NumCPU(), Reps: o.Reps, Meta: CurrentMeta()}
	gate := map[string]float64{"workers": 1}
	res.Points = []map[string]float64{gate}

	packings := []struct {
		name string
		mode core.PackingMode
	}{
		{"size", core.PackSize},
		{"cluster", core.PackCluster},
	}
	selectivities := []int{1, 10}
	for _, pk := range packings {
		env, err := newClusterEnv(o, &sorted, retention, pk.mode)
		if err != nil {
			return nil, err
		}
		// Cycle rng separate from the load rng so both series replay the
		// identical churn sequence.
		rng := rand.New(rand.NewSource(int64(o.Seed) + 1))
		for cycle := 1; cycle <= clusterCycles; cycle++ {
			env.rt.Manager().TryAdvanceEpoch()
			if _, err := env.rt.CompactNow(); err != nil {
				env.Close()
				return nil, err
			}
			dates := survivorDates(env)
			if len(dates) == 0 {
				env.Close()
				return nil, fmt.Errorf("cluster sweep: no surviving rows at cycle %d", cycle)
			}
			lo := dates[0]
			for _, sel := range selectivities {
				hi := dates[min(len(dates)*sel/100, len(dates)-1)]
				pt := ClusterPoint{
					Workers: 1, Packing: pk.name, Cycle: cycle,
					SelectivityPct: float64(sel), Rows: len(dates),
				}
				before := env.rt.StatsSnapshot()
				pruned := env.q.Q6WindowPar(env.s, lo, hi, 1, true)
				after := env.rt.StatsSnapshot()
				unpruned := env.q.Q6WindowPar(env.s, lo, hi, 1, false)
				if pruned != unpruned {
					env.Close()
					return nil, fmt.Errorf("%s packing, cycle %d, sel %d%%: pruned sum %v != unpruned %v",
						pk.name, cycle, sel, pruned, unpruned)
				}
				pt.BlocksTotal = env.db.Lineitems.Context().Blocks()
				pt.BlocksPruned = after.BlocksPruned - before.BlocksPruned
				pt.BlocksScanned = after.BlocksScanned - before.BlocksScanned
				if d := pt.BlocksPruned + pt.BlocksScanned; d > 0 {
					pt.PrunedFrac = float64(pt.BlocksPruned) / float64(d)
				}
				pt.PrunedMs = msF(median(o.Reps, func() { sinkDec = env.q.Q6WindowPar(env.s, lo, hi, 1, true) }))
				pt.UnprunedMs = msF(median(o.Reps, func() { sinkDec = env.q.Q6WindowPar(env.s, lo, hi, 1, false) }))
				if pt.PrunedMs > 0 {
					pt.Speedup = pt.UnprunedMs / pt.PrunedMs
				}
				gate[fmt.Sprintf("cluster_%s_c%d_%d_ms", pk.name, cycle, sel)] = pt.PrunedMs
				res.Sweep = append(res.Sweep, pt)
			}
			if cycle < clusterCycles {
				if err := clusterChurn(env, rng); err != nil {
					env.Close()
					return nil, err
				}
			}
		}
		env.Close()
	}

	joins, err := clusterJoins(o, data, gate)
	if err != nil {
		return nil, err
	}
	res.Joins = joins
	return res, nil
}

// clusterJoins measures the cross-edge key-set pruning of the compiled
// join drivers on a fresh heap against their serial unpruned oracles.
//
// The dataset is re-keyed date-correlated first: orders sort by order
// date and take their position as key (the auto-increment ids of an
// OLTP feed, where insertion order IS date order), and lineitems follow
// their order's new key. dbgen's random orderkey↔date mapping makes
// every lineitem block span the whole key domain, so no key set could
// ever prune; under date-correlated keys the blocks hold contiguous key
// runs and the distilled key sets cut real block ranges. The serial
// oracles run on the same re-keyed collections, so the row-identity
// assertion still covers the pruning paths exactly.
func clusterJoins(o Options, data *tpch.Dataset, gate map[string]float64) ([]ClusterJoinPoint, error) {
	remap := *data
	remap.Orders = append([]tpch.OrderRow(nil), data.Orders...)
	sort.SliceStable(remap.Orders, func(i, j int) bool {
		return remap.Orders[i].OrderDate < remap.Orders[j].OrderDate
	})
	newKey := make(map[int64]int64, len(remap.Orders))
	for i := range remap.Orders {
		nk := int64(i + 1)
		newKey[remap.Orders[i].Key] = nk
		remap.Orders[i].Key = nk
	}
	remap.Lineitems = append([]tpch.LineitemRow(nil), data.Lineitems...)
	for i := range remap.Lineitems {
		remap.Lineitems[i].OrderKey = newKey[remap.Lineitems[i].OrderKey]
	}
	sort.SliceStable(remap.Lineitems, func(i, j int) bool {
		return remap.Lineitems[i].OrderKey < remap.Lineitems[j].OrderKey
	})
	data = &remap

	rt, err := core.NewRuntime(core.Options{HeapBackend: o.HeapBackend})
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	s, err := rt.NewSession()
	if err != nil {
		return nil, err
	}
	defer s.Close()
	db, err := tpch.LoadSMC(rt, s, data, core.RowIndirect)
	if err != nil {
		return nil, err
	}
	q := tpch.NewSMCQueries(db)
	p := tpch.DefaultParams()

	// The pruned pipeline paths must produce exactly the serial oracle's
	// rows — key-set pruning is a block-admission optimization, never a
	// result change.
	if a, b := q.Q3Par(s, p, 1), q.Q3(s, p); !slices.Equal(a, b) {
		return nil, fmt.Errorf("cluster joins: Q3 pruned rows differ from serial oracle")
	}
	if a, b := q.Q4Par(s, p, 1), q.Q4(s, p); !slices.Equal(a, b) {
		return nil, fmt.Errorf("cluster joins: Q4 pruned rows differ from serial oracle")
	}
	if a, b := q.Q10Par(s, p, 1), q.Q10(s, p); !slices.Equal(a, b) {
		return nil, fmt.Errorf("cluster joins: Q10 pruned rows differ from serial oracle")
	}

	var out []ClusterJoinPoint
	runs := []struct {
		name           string
		pruned, serial func()
	}{
		{"q3",
			func() { sinkRows = len(q.Q3Par(s, p, 1)) },
			func() { sinkRows = len(q.Q3(s, p)) }},
		{"q4",
			func() { sinkRows = len(q.Q4Par(s, p, 1)) },
			func() { sinkRows = len(q.Q4(s, p)) }},
		{"q10",
			func() { sinkRows = len(q.Q10Par(s, p, 1)) },
			func() { sinkRows = len(q.Q10(s, p)) }},
	}
	for _, r := range runs {
		pt := ClusterJoinPoint{Workers: 1, Query: r.name}
		before := rt.StatsSnapshot()
		r.pruned()
		after := rt.StatsSnapshot()
		pt.KeySetPruned = after.KeySetPruned - before.KeySetPruned
		pt.SynopsisOverlap = after.SynopsisOverlap - before.SynopsisOverlap
		pt.PrunedMs = msF(median(o.Reps, r.pruned))
		pt.SerialMs = msF(median(o.Reps, r.serial))
		if pt.PrunedMs > 0 {
			pt.Speedup = pt.SerialMs / pt.PrunedMs
		}
		gate[fmt.Sprintf("cluster_%s_ms", r.name)] = pt.PrunedMs
		out = append(out, pt)
	}
	return out, nil
}

// Render emits the sweep and join tables.
func (r *ClusterResult) Render() *Table {
	t := &Table{
		Title:   fmt.Sprintf("Clustered compaction — SF=%v, %d CPUs (workers=1)", r.SF, r.CPUs),
		Columns: []string{"packing", "cycle", "sel %", "pruned ms", "unpruned ms", "×", "pruned frac", "blocks", "rows"},
		Notes: []string{
			"each cycle: 30% upsert scatter + 45% retention trim, then one maintenance pass",
			"cluster packing groups key-adjacent blocks and moves in key order; size packing is fullest-first FFD",
			"joins: q3/q4/q10 cross-edge key-set pruning vs serial oracle — see BENCH_cluster.json",
		},
	}
	for _, pt := range r.Sweep {
		t.Rows = append(t.Rows, []string{
			pt.Packing,
			fmt.Sprintf("%d", pt.Cycle),
			fmt.Sprintf("%.0f", pt.SelectivityPct),
			fmtMs(pt.PrunedMs),
			fmtMs(pt.UnprunedMs),
			fmt.Sprintf("%.2f", pt.Speedup),
			fmt.Sprintf("%.2f", pt.PrunedFrac),
			fmt.Sprintf("%d/%d", pt.BlocksPruned, pt.BlocksTotal),
			fmt.Sprintf("%d", pt.Rows),
		})
	}
	for _, jp := range r.Joins {
		t.Rows = append(t.Rows, []string{
			jp.Query, "-", "-",
			fmtMs(jp.PrunedMs),
			fmtMs(jp.SerialMs),
			fmt.Sprintf("%.2f", jp.Speedup),
			"-",
			fmt.Sprintf("%d pruned/%d overlap", jp.KeySetPruned, jp.SynopsisOverlap),
			"-",
		})
	}
	return t
}

// WriteJSON emits the machine-readable result (BENCH_cluster.json).
func (r *ClusterResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
