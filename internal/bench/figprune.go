package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"

	"repro/internal/core"
	"repro/internal/tpch"
	"repro/internal/types"
)

// The prune figure (beyond-paper): the block-synopsis skip-scan layer
// swept over predicate selectivity × heap fragmentation state, on a
// Q6-style windowed revenue scan over a ship-date-clustered lineitem
// heap (the append-in-event-time shape zone maps reward).
//
// Three heap states per selectivity:
//
//   - fresh: the date-sorted load as-is — block bounds are narrow,
//     disjoint date ranges, the best case for pruning.
//   - churned: an upsert phase (remove + re-add the same rows) scatters
//     late-date rows into reclaimed slots across the heap, widening
//     bounds (widen-only is stale-but-sound); then a retention phase
//     removes every row older than the 75th-percentile date, leaving
//     low-occupancy blocks whose stale bounds still advertise the old
//     dates they no longer hold.
//   - compacted: the churned heap after a Maintainer-style compaction
//     pass — targets rebuild their bounds exactly over the surviving
//     (recent) rows, so queries over old windows prune blocks the
//     churned heap still had to scan.
//
// Every point reports the pruned and unpruned latency of the same scan
// (identical kernel, identical result — asserted) plus the fraction of
// blocks the synopsis check skipped.

// PrunePoint is one (heap state, selectivity) measurement.
type PrunePoint struct {
	Workers        int     `json:"workers"`
	Heap           string  `json:"heap"` // fresh | churned | compacted
	SelectivityPct float64 `json:"selectivity_pct"`
	// PrunedMs / UnprunedMs are the same windowed scan with and without
	// predicate pushdown.
	PrunedMs   float64 `json:"pruned_ms"`
	UnprunedMs float64 `json:"unpruned_ms"`
	Speedup    float64 `json:"speedup"`
	// BlocksTotal is the heap's lineitem block count at measurement time;
	// BlocksPruned/BlocksScanned are one pruned run's synopsis decisions.
	BlocksTotal   int     `json:"blocks_total"`
	BlocksPruned  int64   `json:"blocks_pruned"`
	BlocksScanned int64   `json:"blocks_scanned"`
	PrunedFrac    float64 `json:"pruned_frac"`
}

// PruneResult is the skip-scan figure. Detail carries the per-(heap,
// selectivity) measurements; Points holds one flat workers=1 point with
// every series as its own "<pruned|unpruned>_<heap>_<sel>_ms" key, so
// the benchdiff gate — which diffs the metric keys of the first
// workers=1 point — covers all twelve measurements, not just the first.
type PruneResult struct {
	SF     float64              `json:"sf"`
	CPUs   int                  `json:"cpus"`
	Reps   int                  `json:"reps"`
	Meta   Meta                 `json:"meta"`
	Points []map[string]float64 `json:"points"`
	Detail []PrunePoint         `json:"detail"`
}

// pruneEnv is one loaded lineitem heap in a given fragmentation state.
type pruneEnv struct {
	rt *core.Runtime
	s  *core.Session
	db *tpch.SMCDB
	q  *tpch.SMCQueries
}

func (e *pruneEnv) Close() {
	e.s.Close()
	e.rt.Close()
}

// newPruneEnv loads the date-sorted dataset row-indirect and optionally
// applies the churn (upsert + retention trim past cutoff) and compaction
// phases. The churn is deterministic (seeded rng), so the churned and
// compacted heaps hold identical rows.
func newPruneEnv(o Options, data *tpch.Dataset, cutoff types.Date, churn, compact bool) (*pruneEnv, error) {
	rt, err := core.NewRuntime(core.Options{HeapBackend: o.HeapBackend})
	if err != nil {
		return nil, err
	}
	s, err := rt.NewSession()
	if err != nil {
		rt.Close()
		return nil, err
	}
	db, err := tpch.LoadSMC(rt, s, data, core.RowIndirect)
	if err != nil {
		s.Close()
		rt.Close()
		return nil, err
	}
	env := &pruneEnv{rt: rt, s: s, db: db, q: tpch.NewSMCQueries(db)}
	if !churn {
		return env, nil
	}

	type held struct {
		ref core.Ref[tpch.SLineitem]
		row tpch.SLineitem
	}
	var rows []held
	db.Lineitems.ForEach(s, func(r core.Ref[tpch.SLineitem], v *tpch.SLineitem) bool {
		rows = append(rows, held{ref: r, row: *v})
		return true
	})

	// Upsert churn: remove and re-add the same row for a random 30%
	// sample. Re-adds land in reclaimed slots of whatever block the
	// session holds, so late-date rows scatter across early-date blocks,
	// widening their bounds heap-wide.
	rng := rand.New(rand.NewSource(int64(o.Seed)))
	perm := rng.Perm(len(rows))
	upserts := len(rows) * 30 / 100
	for _, i := range perm[:upserts] {
		if err := db.Lineitems.Remove(s, rows[i].ref); err != nil {
			env.Close()
			return nil, err
		}
		if _, err := db.Lineitems.Add(s, &rows[i].row); err != nil {
			env.Close()
			return nil, err
		}
	}

	// Retention trim plus general attrition: drop everything shipped
	// before the cutoff (the 75th-percentile date — classic time-windowed
	// retention) and a random three quarters of the recent rows. Early
	// blocks keep only the churn phase's scattered late re-adds, recent
	// blocks drop under the compaction threshold too — so the whole heap
	// is fragmented, every surviving block's bounds are stale-wide, and a
	// compaction pass can rewrite (and re-tighten) essentially all of it.
	var victims []core.Ref[tpch.SLineitem]
	db.Lineitems.ForEach(s, func(r core.Ref[tpch.SLineitem], v *tpch.SLineitem) bool {
		if v.ShipDate < cutoff || rng.Intn(4) != 0 {
			victims = append(victims, r)
		}
		return true
	})
	for _, r := range victims {
		if err := db.Lineitems.Remove(s, r); err != nil {
			env.Close()
			return nil, err
		}
	}
	if compact {
		rt.Manager().TryAdvanceEpoch()
		if _, err := rt.CompactNow(); err != nil {
			env.Close()
			return nil, err
		}
	}
	return env, nil
}

// FigurePrune measures pruned vs unpruned Q6-style windowed scans at
// 1/10/50/100% date selectivity over fresh, churned and
// churned-then-compacted heaps. All points run at workers=1 (the stable
// serial baseline the perf gate diffs); results of the pruned and
// unpruned runs are asserted identical per point.
func FigurePrune(o Options) (*PruneResult, error) {
	o = o.WithDefaults()
	data := tpch.Generate(o.SF, o.Seed)

	// Date-sorted load: the append-in-event-time shape.
	sorted := *data
	sorted.Lineitems = append([]tpch.LineitemRow(nil), data.Lineitems...)
	sort.SliceStable(sorted.Lineitems, func(i, j int) bool {
		return sorted.Lineitems[i].ShipDate < sorted.Lineitems[j].ShipDate
	})
	n := len(sorted.Lineitems)
	if n == 0 {
		return nil, fmt.Errorf("empty lineitem table at SF=%v", o.SF)
	}
	quantile := func(pct int) types.Date {
		i := n * pct / 100
		if i >= n {
			i = n - 1
		}
		return sorted.Lineitems[i].ShipDate
	}
	minDate := sorted.Lineitems[0].ShipDate
	retention := quantile(75)

	res := &PruneResult{SF: o.SF, CPUs: runtime.NumCPU(), Reps: o.Reps, Meta: CurrentMeta()}
	gate := map[string]float64{"workers": 1}
	res.Points = []map[string]float64{gate}
	heaps := []struct {
		name           string
		churn, compact bool
	}{
		{"fresh", false, false},
		{"churned", true, false},
		{"compacted", true, true},
	}
	selectivities := []int{1, 10, 50, 100}
	for _, h := range heaps {
		env, err := newPruneEnv(o, &sorted, retention, h.churn, h.compact)
		if err != nil {
			return nil, err
		}
		for _, sel := range selectivities {
			hi := quantile(sel)
			if sel == 100 {
				hi = types.Date(1 << 30) // full-range window
			}
			pt := PrunePoint{Workers: 1, Heap: h.name, SelectivityPct: float64(sel)}
			// One instrumented run pins the pruning decision counts and
			// checks pruned == unpruned.
			before := env.rt.StatsSnapshot()
			pruned := env.q.Q6WindowPar(env.s, minDate, hi, 1, true)
			after := env.rt.StatsSnapshot()
			unpruned := env.q.Q6WindowPar(env.s, minDate, hi, 1, false)
			if pruned != unpruned {
				env.Close()
				return nil, fmt.Errorf("%s heap, sel %d%%: pruned sum %v != unpruned %v", h.name, sel, pruned, unpruned)
			}
			pt.BlocksTotal = env.db.Lineitems.Context().Blocks()
			pt.BlocksPruned = after.BlocksPruned - before.BlocksPruned
			pt.BlocksScanned = after.BlocksScanned - before.BlocksScanned
			if d := pt.BlocksPruned + pt.BlocksScanned; d > 0 {
				pt.PrunedFrac = float64(pt.BlocksPruned) / float64(d)
			}
			pt.PrunedMs = msF(median(o.Reps, func() { sinkDec = env.q.Q6WindowPar(env.s, minDate, hi, 1, true) }))
			pt.UnprunedMs = msF(median(o.Reps, func() { sinkDec = env.q.Q6WindowPar(env.s, minDate, hi, 1, false) }))
			if pt.PrunedMs > 0 {
				pt.Speedup = pt.UnprunedMs / pt.PrunedMs
			}
			gate[fmt.Sprintf("pruned_%s_%d_ms", h.name, sel)] = pt.PrunedMs
			gate[fmt.Sprintf("unpruned_%s_%d_ms", h.name, sel)] = pt.UnprunedMs
			res.Detail = append(res.Detail, pt)
		}
		env.Close()
	}
	return res, nil
}

// Render emits the sweep table.
func (r *PruneResult) Render() *Table {
	t := &Table{
		Title:   fmt.Sprintf("Skip-scan pruning — SF=%v, %d CPUs (Q6-style window, workers=1)", r.SF, r.CPUs),
		Columns: []string{"heap", "sel %", "pruned ms", "unpruned ms", "×", "pruned frac", "blocks"},
		Notes: []string{
			"bounds widen on insert, stay stale-but-sound on remove, rebuild exactly on compaction",
			"churned = upsert scatter + retention trim; compacted = churned + one compaction pass",
		},
	}
	for _, pt := range r.Detail {
		t.Rows = append(t.Rows, []string{
			pt.Heap,
			fmt.Sprintf("%.0f", pt.SelectivityPct),
			fmtMs(pt.PrunedMs),
			fmtMs(pt.UnprunedMs),
			fmt.Sprintf("%.2f", pt.Speedup),
			fmt.Sprintf("%.2f", pt.PrunedFrac),
			fmt.Sprintf("%d/%d", pt.BlocksPruned, pt.BlocksTotal),
		})
	}
	return t
}

// WriteJSON emits the machine-readable result (BENCH_prune.json).
func (r *PruneResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
