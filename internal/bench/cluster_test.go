package bench

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/tpch"
)

// upsertScatter removes and re-adds a random 30% of the lineitems: the
// rows live on unchanged, but the re-adds land in reclaimed slots
// heap-wide, widening every block's bounds — the churn shape that
// degrades zone maps.
func upsertScatter(t *testing.T, env *pruneEnv, rng *rand.Rand) {
	t.Helper()
	type held struct {
		ref core.Ref[tpch.SLineitem]
		row tpch.SLineitem
	}
	var rows []held
	env.db.Lineitems.ForEach(env.s, func(r core.Ref[tpch.SLineitem], v *tpch.SLineitem) bool {
		rows = append(rows, held{ref: r, row: *v})
		return true
	})
	for _, i := range rng.Perm(len(rows))[:len(rows)*30/100] {
		if err := env.db.Lineitems.Remove(env.s, rows[i].ref); err != nil {
			t.Fatal(err)
		}
		if _, err := env.db.Lineitems.Add(env.s, &rows[i].row); err != nil {
			t.Fatal(err)
		}
	}
}

// clusterFrac runs one maintenance pass and measures the pruned block
// fraction of a 1%-selectivity window scan over the surviving date
// domain, asserting the pruned and unpruned sums are identical.
func clusterFrac(t *testing.T, env *pruneEnv, label string) float64 {
	t.Helper()
	env.rt.Manager().TryAdvanceEpoch()
	moved, err := env.rt.CompactNow()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s: moved=%d blocks=%d rows=%d", label, moved,
		env.db.Lineitems.Context().Blocks(), env.db.Lineitems.Context().Len())
	dates := survivorDates(env)
	if len(dates) == 0 {
		t.Fatalf("%s: no surviving rows", label)
	}
	lo, hi := dates[0], dates[len(dates)/100]
	before := env.rt.StatsSnapshot()
	pruned := env.q.Q6WindowPar(env.s, lo, hi, 1, true)
	after := env.rt.StatsSnapshot()
	if unpruned := env.q.Q6WindowPar(env.s, lo, hi, 1, false); pruned != unpruned {
		t.Fatalf("%s: pruned sum %v != unpruned %v", label, pruned, unpruned)
	}
	p := after.BlocksPruned - before.BlocksPruned
	s := after.BlocksScanned - before.BlocksScanned
	if p+s == 0 {
		t.Fatalf("%s: window scan made no block decisions", label)
	}
	return float64(p) / float64(p+s)
}

// TestClusterSteadyStatePruning pins the tentpole's steady-state
// guarantee: from a churned retention heap, clustered compaction reaches
// >= 90% blocks pruned on a 1%-selectivity window after ONE maintenance
// pass, and stays there as upsert churn keeps scattering 30% of the
// rows between passes. Size-only packing on the identical heap and
// churn sequence never prunes more than the clustered run (the
// monotonicity half of the contract).
func TestClusterSteadyStatePruning(t *testing.T) {
	if testing.Short() {
		t.Skip("loads two SF=0.05 heaps")
	}
	o := Options{SF: 0.05, Seed: 42, Reps: 1}.WithDefaults()
	data := tpch.Generate(o.SF, o.Seed)
	sorted := *data
	sorted.Lineitems = append([]tpch.LineitemRow(nil), data.Lineitems...)
	sort.SliceStable(sorted.Lineitems, func(i, j int) bool {
		return sorted.Lineitems[i].ShipDate < sorted.Lineitems[j].ShipDate
	})
	n := len(sorted.Lineitems)
	retention := sorted.Lineitems[n*75/100].ShipDate

	envC, err := newClusterEnv(o, &sorted, retention, core.PackCluster)
	if err != nil {
		t.Fatal(err)
	}
	defer envC.Close()
	envS, err := newClusterEnv(o, &sorted, retention, core.PackSize)
	if err != nil {
		t.Fatal(err)
	}
	defer envS.Close()

	rngC := rand.New(rand.NewSource(43))
	rngS := rand.New(rand.NewSource(43))
	for cycle := 1; cycle <= 3; cycle++ {
		fc := clusterFrac(t, envC, "cluster")
		fs := clusterFrac(t, envS, "size")
		t.Logf("cycle %d: cluster pruned frac %.2f, size %.2f", cycle, fc, fs)
		if fc < 0.90 {
			t.Fatalf("cycle %d: clustered pruned fraction %.2f < 0.90", cycle, fc)
		}
		if fc < fs {
			t.Fatalf("cycle %d: clustered pruned fraction %.2f below size-only %.2f", cycle, fc, fs)
		}
		if cycle < 3 {
			upsertScatter(t, envC, rngC)
			upsertScatter(t, envS, rngS)
		}
	}
}
