package bench

import (
	"fmt"
	"time"
	"unsafe"

	"repro/internal/core"
	"repro/internal/decimal"
	"repro/internal/managed"
	"repro/internal/mem"
	"repro/internal/tpch"
)

// Figure10Result holds enumeration times (ms) per series, for the simple
// and nested workloads, in fresh and worn collection states.
type Figure10Result struct {
	// Series name -> [simpleFresh, simpleWorn, nestedFresh, nestedWorn] ms.
	Series map[string][4]float64
	Order  []string
}

// Figure10 reproduces "Enumeration performance" (Fig. 10): (a) enumerate
// the lineitem collection applying a simple function to each object;
// (b) additionally follow the order reference and then the customer
// reference ("for each object follow the order reference to a customer
// object"). Collections are measured freshly loaded and after wear
// (many removals and insertions), which scatters managed objects over the
// heap and leaves limbo holes in SMC blocks (§7).
func Figure10(o Options) (*Figure10Result, error) {
	o = o.WithDefaults()
	data := tpch.Generate(o.SF, o.Seed)
	res := &Figure10Result{
		Series: map[string][4]float64{},
		Order:  []string{"list", "concurrent-bag", "concurrent-dictionary", "smc", "smc-direct"},
	}

	// --- Managed engines. ---
	mdb := tpch.LoadManaged(data)
	bag := managed.NewConcurrentBag[tpch.MLineitem]()
	for _, l := range mdb.Lineitems.Items() {
		p := l
		bagAddExisting(bag, p)
	}
	ddb := tpch.LoadDict(mdb)

	wearManaged := func() {
		// Replace 60% of the lineitems in several rounds: removals free
		// heap objects, re-insertions allocate new ones elsewhere.
		items := mdb.Lineitems
		for round := 0; round < 3; round++ {
			n := items.Len()
			victims := n / 5
			removed := 0
			items.RemoveWhere(func(l *tpch.MLineitem) bool {
				if removed < victims && l.OrderKey%5 == int64(round) {
					removed++
					return true
				}
				return false
			})
			for i := 0; i < removed; i++ {
				row := &data.Lineitems[(round*victims+i)%len(data.Lineitems)]
				ml := rowToMLineitem(row)
				ml.Order = mdb.Orders.At(int(row.OrderKey-1) % mdb.Orders.Len())
				items.AddPtr(ml)
			}
			// Churn garbage between rounds so survivors scatter.
			for i := 0; i < 1_000; i++ {
				sinkAny = make([]byte, 4096)
			}
		}
	}

	simpleList := func() {
		var sum decimal.Dec128
		for _, l := range mdb.Lineitems.Items() {
			decimal.AddAssign(&sum, &l.ExtendedPrice)
		}
		sinkDec = sum
	}
	nestedList := func() {
		var sum decimal.Dec128
		var cnt int64
		for _, l := range mdb.Lineitems.Items() {
			o := l.Order
			if o == nil {
				continue
			}
			c := o.Customer
			if c == nil {
				continue
			}
			decimal.AddAssign(&sum, &c.AcctBal)
			cnt++
		}
		sinkDec = sum
		_ = cnt
	}
	simpleBag := func() {
		var sum decimal.Dec128
		bag.Range(func(l *tpch.MLineitem) bool {
			decimal.AddAssign(&sum, &l.ExtendedPrice)
			return true
		})
		sinkDec = sum
	}
	nestedBag := func() {
		var sum decimal.Dec128
		bag.Range(func(l *tpch.MLineitem) bool {
			if o := l.Order; o != nil {
				if c := o.Customer; c != nil {
					decimal.AddAssign(&sum, &c.AcctBal)
				}
			}
			return true
		})
		sinkDec = sum
	}
	simpleDict := func() {
		var sum decimal.Dec128
		ddb.LineitemsByKey.Range(func(_ int64, lp **tpch.MLineitem) bool {
			decimal.AddAssign(&sum, &(*lp).ExtendedPrice)
			return true
		})
		sinkDec = sum
	}
	nestedDict := func() {
		var sum decimal.Dec128
		ddb.LineitemsByKey.Range(func(_ int64, lp **tpch.MLineitem) bool {
			l := *lp
			if o := l.Order; o != nil {
				if c := o.Customer; c != nil {
					decimal.AddAssign(&sum, &c.AcctBal)
				}
			}
			return true
		})
		sinkDec = sum
	}

	listFreshSimple := median(o.Reps, simpleList)
	listFreshNested := median(o.Reps, nestedList)
	bagFreshSimple := median(o.Reps, simpleBag)
	bagFreshNested := median(o.Reps, nestedBag)
	dictFreshSimple := median(o.Reps, simpleDict)
	dictFreshNested := median(o.Reps, nestedDict)

	wearManaged()

	res.Series["list"] = [4]float64{msF(listFreshSimple), msF(median(o.Reps, simpleList)), msF(listFreshNested), msF(median(o.Reps, nestedList))}
	res.Series["concurrent-bag"] = [4]float64{msF(bagFreshSimple), msF(median(o.Reps, simpleBag)), msF(bagFreshNested), msF(median(o.Reps, nestedBag))}
	res.Series["concurrent-dictionary"] = [4]float64{msF(dictFreshSimple), msF(median(o.Reps, simpleDict)), msF(dictFreshNested), msF(median(o.Reps, nestedDict))}

	// --- SMC engines (indirect and direct). ---
	for _, layout := range []core.Layout{core.RowIndirect, core.RowDirect} {
		name := "smc"
		if layout == core.RowDirect {
			name = "smc-direct"
		}
		rt, err := core.NewRuntime(core.Options{HeapBackend: o.HeapBackend})
		if err != nil {
			return nil, err
		}
		s := rt.MustSession()
		sdb, err := tpch.LoadSMC(rt, s, data, layout)
		if err != nil {
			rt.Close()
			return nil, err
		}
		q := tpch.NewSMCQueries(sdb)

		extF := sdb.Lineitems.Schema().MustField("ExtendedPrice")
		balF := sdb.Customers.Schema().MustField("AcctBal")
		frOrder := sdb.Lineitems.FieldRefByName("Order")
		frCust := sdb.Orders.FieldRefByName("Customer")

		// Compiled-code enumeration: open-coded block loops with hoisted
		// offsets, as the paper's generated queries produce (§4).
		extOff := extF.Offset
		simple := func() {
			var sum decimal.Dec128
			s.Enter()
			en := sdb.Lineitems.Enumerate(s)
			for {
				blk, ok := en.NextBlock()
				if !ok {
					break
				}
				n := blk.Capacity()
				for i := 0; i < n; i++ {
					if !blk.SlotIsValid(i) {
						continue
					}
					decimal.AddAssign(&sum, (*decimal.Dec128)(unsafe.Add(blk.SlotData(i), extOff)))
				}
			}
			en.Close()
			s.Exit()
			sinkDec = sum
		}
		nested := func() {
			var sum decimal.Dec128
			s.Enter()
			en := sdb.Lineitems.Enumerate(s)
			for {
				blk, ok := en.NextBlock()
				if !ok {
					break
				}
				n := blk.Capacity()
				for i := 0; i < n; i++ {
					if !blk.SlotIsValid(i) {
						continue
					}
					l := mem.Obj{Blk: blk, Slot: i, Ptr: blk.SlotData(i)}
					oobj, err := q.Deref(s, &frOrder, l)
					if err != nil {
						continue
					}
					cobj, err := q.Deref(s, &frCust, oobj)
					if err != nil {
						continue
					}
					decimal.AddAssign(&sum, (*decimal.Dec128)(cobj.Field(balF)))
				}
			}
			en.Close()
			s.Exit()
			sinkDec = sum
		}

		freshSimple := median(o.Reps, simple)
		freshNested := median(o.Reps, nested)

		// Wear: remove/re-insert 60% in rounds; limbo slots accumulate
		// until reclaimed, leaving holes (paper: "blocks containing
		// objects may have holes due to limbo slots").
		var refs []core.Ref[tpch.SLineitem]
		sdb.Lineitems.ForEach(s, func(r core.Ref[tpch.SLineitem], _ *tpch.SLineitem) bool {
			refs = append(refs, r)
			return true
		})
		for round := 0; round < 3; round++ {
			lo := round * len(refs) / 5
			hi := (round + 1) * len(refs) / 5
			for i := lo; i < hi; i++ {
				_ = sdb.Lineitems.Remove(s, refs[i])
			}
			rt.Manager().TryAdvanceEpoch()
			rt.Manager().TryAdvanceEpoch()
			for i := lo; i < hi; i++ {
				row := &data.Lineitems[i%len(data.Lineitems)]
				l := rowToSLineitem(row)
				if r, err := sdb.Lineitems.Add(s, &l); err == nil {
					refs[i] = r
				}
			}
		}
		_ = q

		res.Series[name] = [4]float64{
			msF(freshSimple), msF(median(o.Reps, simple)),
			msF(freshNested), msF(median(o.Reps, nested)),
		}
		s.Close()
		rt.Close()
	}
	return res, nil
}

func objPtrRow(b *mem.Block, slot int) unsafe.Pointer { return b.SlotData(slot) }

func msF(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func bagAddExisting(b *managed.ConcurrentBag[tpch.MLineitem], p *tpch.MLineitem) {
	// ConcurrentBag.Add copies; for the enumeration benchmark we want the
	// same object graph, so add a copy pointing at the same Order.
	b.Add(p)
}

// Render emits the Figure 10 table.
func (r *Figure10Result) Render() *Table {
	t := &Table{
		Title:   "Figure 10 — enumeration performance (ms)",
		Columns: []string{"series", "simple fresh", "simple worn", "nested fresh", "nested worn"},
	}
	for _, name := range r.Order {
		v := r.Series[name]
		t.Rows = append(t.Rows, []string{
			name,
			fmtMs(v[0]), fmtMs(v[1]), fmtMs(v[2]), fmtMs(v[3]),
		})
	}
	return t
}

func fmtMs(v float64) string {
	switch {
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}
