package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"

	"repro/internal/core"
	"repro/internal/decimal"
	"repro/internal/tpch"
)

// workerSweep builds a figure's worker-count list: an explicitly
// configured list is used verbatim, while the default list is extended
// by doubling up to the machine's cores (plus NumCPU itself) so the
// figure shows the full scaling curve.
func workerSweep(threads []int, explicit bool) []int {
	sweep := append([]int(nil), threads...)
	if explicit {
		return sweep
	}
	maxW := 1
	for _, w := range sweep {
		if w > maxW {
			maxW = w
		}
	}
	for w := maxW * 2; w <= runtime.NumCPU(); w *= 2 {
		sweep = append(sweep, w)
		maxW = w
	}
	if n := runtime.NumCPU(); maxW < n {
		sweep = append(sweep, n)
	}
	return sweep
}

// ParallelPoint is one worker count's measurements (milliseconds).
type ParallelPoint struct {
	Workers int     `json:"workers"`
	Q1RowMs float64 `json:"q1_row_ms"`
	Q1ColMs float64 `json:"q1_col_ms"`
	Q6RowMs float64 `json:"q6_row_ms"`
	Q6ColMs float64 `json:"q6_col_ms"`
	AggMs   float64 `json:"agg_ms"`
}

// ParallelResult is the parallel-scan scaling figure (beyond-paper): the
// block-sharded query engine swept over worker counts on full-collection
// scan/aggregate kernels.
type ParallelResult struct {
	SF     float64         `json:"sf"`
	CPUs   int             `json:"cpus"`
	Reps   int             `json:"reps"`
	Meta   Meta            `json:"meta"`
	Points []ParallelPoint `json:"points"`
}

// FigureParallel measures the parallel scan engine: TPC-H Q1 and Q6
// compiled kernels (row-indirect and columnar layouts) plus a typed
// ParallelAggregate revenue sum, each swept over o.Threads worker
// counts. The 1-worker point runs the scan inline on the coordinator
// session, so it is an honest serial baseline (same kernel, no pool).
func FigureParallel(o Options) (*ParallelResult, error) {
	// An explicitly configured worker list is used verbatim; only the
	// default sweep is extended up to the machine's cores.
	explicit := len(o.Threads) > 0
	o = o.WithDefaults()
	data := tpch.Generate(o.SF, o.Seed)
	p := tpch.DefaultParams()

	load := func(layout core.Layout) (*core.Runtime, *core.Session, *tpch.SMCDB, *tpch.SMCQueries, error) {
		rt, err := core.NewRuntime(core.Options{HeapBackend: o.HeapBackend})
		if err != nil {
			return nil, nil, nil, nil, err
		}
		s := rt.MustSession()
		db, err := tpch.LoadSMC(rt, s, data, layout)
		if err != nil {
			s.Close()
			rt.Close()
			return nil, nil, nil, nil, err
		}
		return rt, s, db, tpch.NewSMCQueries(db), nil
	}
	rtRow, sRow, dbRow, qRow, err := load(core.RowIndirect)
	if err != nil {
		return nil, err
	}
	defer func() { sRow.Close(); rtRow.Close() }()
	rtCol, sCol, _, qCol, err := load(core.Columnar)
	if err != nil {
		return nil, err
	}
	defer func() { sCol.Close(); rtCol.Close() }()

	sweep := workerSweep(o.Threads, explicit)

	res := &ParallelResult{SF: o.SF, CPUs: runtime.NumCPU(), Reps: o.Reps, Meta: CurrentMeta()}
	for _, workers := range sweep {
		w := workers
		pt := ParallelPoint{Workers: w}
		pt.Q1RowMs = msF(median(o.Reps, func() { sinkAny = qRow.Q1Par(sRow, p, w) }))
		pt.Q1ColMs = msF(median(o.Reps, func() { sinkAny = qCol.Q1Par(sCol, p, w) }))
		pt.Q6RowMs = msF(median(o.Reps, func() { sinkDec = qRow.Q6Par(sRow, p, w) }))
		pt.Q6ColMs = msF(median(o.Reps, func() { sinkDec = qCol.Q6Par(sCol, p, w) }))
		var aggErr error
		pt.AggMs = msF(median(o.Reps, func() {
			sum, err := core.ParallelAggregate(dbRow.Lineitems, sRow, w,
				func(int) decimal.Dec128 { return decimal.Dec128{} },
				func(acc decimal.Dec128, _ core.Ref[tpch.SLineitem], v *tpch.SLineitem) decimal.Dec128 {
					return acc.Add(v.ExtendedPrice)
				},
				func(a, b decimal.Dec128) decimal.Dec128 { return a.Add(b) },
			)
			if err != nil {
				aggErr = err
				return
			}
			sinkDec = sum
		}))
		if aggErr != nil {
			return nil, fmt.Errorf("parallel aggregate at %d workers: %w", w, aggErr)
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// Render emits the scaling table with speedups relative to the lowest
// measured worker count.
func (r *ParallelResult) Render() *Table {
	var base ParallelPoint
	if len(r.Points) > 0 {
		base = r.Points[0]
		for _, pt := range r.Points {
			if pt.Workers < base.Workers {
				base = pt
			}
		}
	}
	t := &Table{
		Title:   fmt.Sprintf("Parallel scan scaling — SF=%v, %d CPUs (ms, ×=speedup vs %d worker(s))", r.SF, r.CPUs, base.Workers),
		Columns: []string{"workers", "Q1 row", "×", "Q1 col", "×", "Q6 row", "×", "Q6 col", "×", "agg sum", "×"},
		Notes: []string{
			"one §5.2 decision pass per scan, N worker sessions, atomic-cursor work stealing",
			"speedup requires free cores: GOMAXPROCS=" + fmt.Sprint(runtime.GOMAXPROCS(0)),
		},
	}
	sp := func(b, v float64) string {
		if v <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.2f", b/v)
	}
	for _, pt := range r.Points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(pt.Workers),
			fmtMs(pt.Q1RowMs), sp(base.Q1RowMs, pt.Q1RowMs),
			fmtMs(pt.Q1ColMs), sp(base.Q1ColMs, pt.Q1ColMs),
			fmtMs(pt.Q6RowMs), sp(base.Q6RowMs, pt.Q6RowMs),
			fmtMs(pt.Q6ColMs), sp(base.Q6ColMs, pt.Q6ColMs),
			fmtMs(pt.AggMs), sp(base.AggMs, pt.AggMs),
		})
	}
	return t
}

// WriteJSON emits the machine-readable result (BENCH_parallel.json).
func (r *ParallelResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
