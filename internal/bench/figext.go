package bench

import (
	"fmt"
	"time"

	"repro/internal/colstore"
	"repro/internal/tpch"
)

// QueryTimesX holds per-query times for the extended set Q7–Q10.
type QueryTimesX [4]time.Duration

// FigureExtResult compares every engine on TPC-H Q7–Q10. This experiment
// extends the paper's Figure 11–13 matrix to the join-heaviest queries of
// the benchmark's first half — the workload class §6's direct pointers
// target ("when a query touches an object that contains many references
// to nested objects").
type FigureExtResult struct {
	List, Dict             QueryTimesX
	SMCSafe, SMCUnsafe     QueryTimesX
	SMCDirect, SMCColumnar QueryTimesX
	ColStore               QueryTimesX
}

// FigureExt measures Q7–Q10 across all engines (beyond-paper extension;
// the series mirror Figures 11–13 so the same comparisons can be read off
// one table).
func FigureExt(o Options) (*FigureExtResult, error) {
	o = o.WithDefaults()
	env, err := newQueryEnv(o)
	if err != nil {
		return nil, err
	}
	defer env.Close()
	cs := colstore.Load(env.data)
	p := tpch.DefaultParams()
	res := &FigureExtResult{}

	res.List = QueryTimesX{
		median(o.Reps, func() { sinkAny = tpch.ListQ7(env.mdb, p) }),
		median(o.Reps, func() { sinkAny = tpch.ListQ8(env.mdb, p) }),
		median(o.Reps, func() { sinkAny = tpch.ListQ9(env.mdb, p) }),
		median(o.Reps, func() { sinkAny = tpch.ListQ10(env.mdb, p) }),
	}
	res.Dict = QueryTimesX{
		median(o.Reps, func() { sinkAny = tpch.DictQ7(env.ddb, p) }),
		median(o.Reps, func() { sinkAny = tpch.DictQ8(env.ddb, p) }),
		median(o.Reps, func() { sinkAny = tpch.DictQ9(env.ddb, p) }),
		median(o.Reps, func() { sinkAny = tpch.DictQ10(env.ddb, p) }),
	}
	res.SMCSafe = QueryTimesX{
		median(o.Reps, func() { sinkAny = tpch.SMCSafeQ7(env.smcIndirect, env.sIndirect, p) }),
		median(o.Reps, func() { sinkAny = tpch.SMCSafeQ8(env.smcIndirect, env.sIndirect, p) }),
		median(o.Reps, func() { sinkAny = tpch.SMCSafeQ9(env.smcIndirect, env.sIndirect, p) }),
		median(o.Reps, func() { sinkAny = tpch.SMCSafeQ10(env.smcIndirect, env.sIndirect, p) }),
	}
	runAll := func(q *tpch.SMCQueries, s sessionT) QueryTimesX {
		return QueryTimesX{
			median(o.Reps, func() { sinkAny = q.Q7(s, p) }),
			median(o.Reps, func() { sinkAny = q.Q8(s, p) }),
			median(o.Reps, func() { sinkAny = q.Q9(s, p) }),
			median(o.Reps, func() { sinkAny = q.Q10(s, p) }),
		}
	}
	res.SMCUnsafe = runAll(env.qIndirect, env.sIndirect)
	res.SMCDirect = runAll(env.qDirect, env.sDirect)
	res.SMCColumnar = runAll(env.qColumnar, env.sColumnar)
	res.ColStore = QueryTimesX{
		median(o.Reps, func() { sinkAny = cs.Q7(p) }),
		median(o.Reps, func() { sinkAny = cs.Q8(p) }),
		median(o.Reps, func() { sinkAny = cs.Q9(p) }),
		median(o.Reps, func() { sinkAny = cs.Q10(p) }),
	}
	return res, nil
}

// Render emits the extended-queries table (relative to List = 100).
func (r *FigureExtResult) Render() *Table {
	t := &Table{
		Title:   "Extension — TPC-H Q7..Q10 across all engines, relative to List (=100); ms absolute in parens",
		Columns: []string{"series", "Q7", "Q8", "Q9", "Q10"},
		Notes: []string{
			"beyond-paper extension: the Figure 11-13 series on the join-heaviest queries",
		},
	}
	row := func(name string, qt QueryTimesX) {
		cells := []string{name}
		for i := 0; i < 4; i++ {
			cells = append(cells, fmt.Sprintf("%s (%s)", rel(r.List[i], qt[i]), ms(qt[i])))
		}
		t.Rows = append(t.Rows, cells)
	}
	row("list", r.List)
	row("concurrent-dictionary", r.Dict)
	row("smc (safe)", r.SMCSafe)
	row("smc (unsafe)", r.SMCUnsafe)
	row("smc (direct)", r.SMCDirect)
	row("smc (columnar)", r.SMCColumnar)
	row("column store", r.ColStore)
	return t
}
