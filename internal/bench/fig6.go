package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/decimal"
	"repro/internal/mem"
	"repro/internal/tpch"
)

// sinkDec defeats dead-code elimination in measurement loops.
var sinkDec decimal.Dec128

// Figure6Point is one threshold setting's normalized measurements.
type Figure6Point struct {
	ThresholdPct int
	OpsPerSec    float64 // allocation/removal throughput
	QueryMs      float64 // enumeration-query time
	MemoryBytes  int64
}

// Figure6Result is the full sweep.
type Figure6Result struct {
	Points []Figure6Point
}

// Figure6 reproduces "Sensitivity to relocation threshold" (Fig. 6): the
// reclamation-threshold knob is swept while a lineitem SMC undergoes
// insert/remove churn; reported are memory-operation throughput, query
// time and total memory, normalized to each series' maximum in Render.
func Figure6(o Options) (*Figure6Result, error) {
	o = o.WithDefaults()
	data := tpch.Generate(o.SF, o.Seed)
	res := &Figure6Result{}

	for _, pct := range []int{1, 2, 5, 10, 20, 30, 50, 75, 95} {
		rt, err := core.NewRuntime(core.Options{
			ReclaimThreshold: float64(pct) / 100,
			HeapBackend:      o.HeapBackend,
		})
		if err != nil {
			return nil, err
		}
		s, err := rt.NewSession()
		if err != nil {
			rt.Close()
			return nil, err
		}
		coll, err := core.NewCollection[tpch.SLineitem](rt, "lineitem", core.RowIndirect)
		if err != nil {
			rt.Close()
			return nil, err
		}
		// Initial population (lineitems only; refs nil).
		refs := make([]core.Ref[tpch.SLineitem], 0, len(data.Lineitems))
		for i := range data.Lineitems {
			l := rowToSLineitem(&data.Lineitems[i])
			r, err := coll.Add(s, &l)
			if err != nil {
				rt.Close()
				return nil, err
			}
			refs = append(refs, r)
		}

		// Churn: remove/insert 30% of the population in batches, letting
		// epochs advance so limbo slots ripen at the configured rate.
		batch := len(refs) / 10
		if batch == 0 {
			batch = 1
		}
		ops := 0
		t0 := time.Now()
		for round := 0; round < 3; round++ {
			lo := round * batch
			for i := lo; i < lo+batch && i < len(refs); i++ {
				if err := coll.Remove(s, refs[i]); err != nil {
					rt.Close()
					return nil, err
				}
				ops++
			}
			rt.Manager().TryAdvanceEpoch()
			rt.Manager().TryAdvanceEpoch()
			for i := lo; i < lo+batch && i < len(refs); i++ {
				l := rowToSLineitem(&data.Lineitems[i])
				r, err := coll.Add(s, &l)
				if err != nil {
					rt.Close()
					return nil, err
				}
				refs[i] = r
				ops++
			}
		}
		churn := time.Since(t0)

		// Query: enumerate summing quantity (Q6-flavoured scan) — the
		// limbo fraction determines slot-directory branch behaviour.
		qtyF := coll.Schema().MustField("Quantity")
		q := median(o.Reps, func() {
			var total decimal.Dec128
			coll.Context().ForEachValid(s.Mem(), func(b *mem.Block, slot int) bool {
				decimal.AddAssign(&total, (*decimal.Dec128)(b.FieldPtr(slot, qtyF)))
				return true
			})
			sinkDec = total
		})

		res.Points = append(res.Points, Figure6Point{
			ThresholdPct: pct,
			OpsPerSec:    float64(ops) / churn.Seconds(),
			QueryMs:      float64(q.Microseconds()) / 1000,
			MemoryBytes:  coll.MemoryBytes(),
		})
		s.Close()
		rt.Close()
	}
	return res, nil
}

// Render normalizes each series to its maximum, as in the paper's plot.
func (r *Figure6Result) Render() *Table {
	t := &Table{
		Title:   "Figure 6 — varying the reclamation threshold (normalized to max)",
		Columns: []string{"threshold%", "alloc/removal perf", "query perf", "total memory"},
		Notes: []string{
			"alloc/removal perf = ops/s normalized (higher is better), as in the paper",
			"query perf = 1/time normalized (higher is better)",
			"memory = bytes normalized (lower is better)",
		},
	}
	var maxOps, maxQ float64
	var maxMem int64
	for _, p := range r.Points {
		if p.OpsPerSec > maxOps {
			maxOps = p.OpsPerSec
		}
		if 1/p.QueryMs > maxQ {
			maxQ = 1 / p.QueryMs
		}
		if p.MemoryBytes > maxMem {
			maxMem = p.MemoryBytes
		}
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.ThresholdPct),
			fmt.Sprintf("%.3f", p.OpsPerSec/maxOps),
			fmt.Sprintf("%.3f", (1/p.QueryMs)/maxQ),
			fmt.Sprintf("%.3f", float64(p.MemoryBytes)/float64(maxMem)),
		})
	}
	return t
}

// rowToSLineitem converts a generated row without reference wiring (the
// microbenchmarks churn lineitems standalone, as the paper's Figure 6–8
// workloads do).
func rowToSLineitem(l *tpch.LineitemRow) tpch.SLineitem {
	return tpch.SLineitem{
		OrderKey: l.OrderKey, LineNumber: l.LineNumber,
		Quantity: l.Quantity, ExtendedPrice: l.ExtendedPrice,
		Discount: l.Discount, Tax: l.Tax,
		ReturnFlag: l.ReturnFlag, LineStatus: l.LineStatus,
		ShipDate: l.ShipDate, CommitDate: l.CommitDate, ReceiptDate: l.ReceiptDate,
		ShipInstruct: l.ShipInstruct, ShipMode: l.ShipMode, Comment: l.Comment,
	}
}
