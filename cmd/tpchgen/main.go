// Command tpchgen generates the object-oriented TPC-H dataset and prints
// table cardinalities and sample rows — handy for sizing experiments and
// sanity-checking distributions.
package main

import (
	"flag"
	"fmt"
	"sort"

	"repro/internal/tpch"
)

func main() {
	var (
		sf   = flag.Float64("sf", 0.01, "scale factor")
		seed = flag.Uint64("seed", 42, "generator seed")
		show = flag.Int("show", 3, "sample rows to print per table")
	)
	flag.Parse()

	d := tpch.Generate(*sf, *seed)
	counts := d.Counts()
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("TPC-H dataset sf=%v seed=%d\n", *sf, *seed)
	for _, n := range names {
		fmt.Printf("  %-10s %10d rows\n", n, counts[n])
	}
	if *show > 0 {
		fmt.Println("\nsample lineitems:")
		for i := 0; i < *show && i < len(d.Lineitems); i++ {
			l := d.Lineitems[i]
			fmt.Printf("  order=%d line=%d qty=%s price=%s disc=%s ship=%s flag=%c status=%c\n",
				l.OrderKey, l.LineNumber, l.Quantity, l.ExtendedPrice, l.Discount,
				l.ShipDate, rune(l.ReturnFlag), rune(l.LineStatus))
		}
		fmt.Println("\nsample orders:")
		for i := 0; i < *show && i < len(d.Orders); i++ {
			o := d.Orders[i]
			fmt.Printf("  key=%d cust=%d date=%s prio=%q total=%s\n",
				o.Key, o.CustomerKey, o.OrderDate, o.OrderPriority, o.TotalPrice)
		}
	}
}
