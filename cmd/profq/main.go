// Command profq profiles compiled SMC queries: it loads TPC-H into a
// self-managed database and runs one or more queries in a loop under the
// CPU profiler, for feeding `go tool pprof`.
//
// Usage:
//
//	profq -q 3,5 -layout direct -sf 0.05 -dur 5s -o /tmp/q.prof
//
// Queries 1–10 are available; the layout is one of indirect, direct,
// columnar.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/tpch"
)

func main() {
	var (
		qs     = flag.String("q", "3,5", "comma-separated query numbers (1-10)")
		layout = flag.String("layout", "indirect", "collection layout: indirect, direct, columnar")
		sf     = flag.Float64("sf", 0.02, "TPC-H scale factor")
		dur    = flag.Duration("dur", 3*time.Second, "profiling duration")
		out    = flag.String("o", "/tmp/smcq.prof", "CPU profile output path")
	)
	flag.Parse()

	var l core.Layout
	switch *layout {
	case "indirect":
		l = core.RowIndirect
	case "direct":
		l = core.RowDirect
	case "columnar":
		l = core.Columnar
	default:
		log.Fatalf("profq: unknown layout %q", *layout)
	}

	data := tpch.Generate(*sf, 42)
	rt := core.MustRuntime(core.Options{})
	defer rt.Close()
	s := rt.MustSession()
	defer s.Close()
	sdb, err := tpch.LoadSMC(rt, s, data, l)
	if err != nil {
		log.Fatal(err)
	}
	q := tpch.NewSMCQueries(sdb)
	p := tpch.DefaultParams()

	runners := map[string]func(){
		"1":  func() { q.Q1(s, p) },
		"2":  func() { q.Q2(s, p) },
		"3":  func() { q.Q3(s, p) },
		"4":  func() { q.Q4(s, p) },
		"5":  func() { q.Q5(s, p) },
		"6":  func() { q.Q6(s, p) },
		"7":  func() { q.Q7(s, p) },
		"8":  func() { q.Q8(s, p) },
		"9":  func() { q.Q9(s, p) },
		"10": func() { q.Q10(s, p) },
	}
	var selected []func()
	for _, name := range strings.Split(*qs, ",") {
		name = strings.TrimSpace(name)
		fn, ok := runners[name]
		if !ok {
			log.Fatalf("profq: unknown query %q (want 1-10)", name)
		}
		selected = append(selected, fn)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := pprof.StartCPUProfile(f); err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	iters := 0
	for time.Since(t0) < *dur {
		for _, fn := range selected {
			fn()
		}
		iters++
	}
	pprof.StopCPUProfile()
	fmt.Printf("profq: %d iterations of Q{%s} on %s layout in %v; profile at %s\n",
		iters, *qs, l, time.Since(t0).Round(time.Millisecond), *out)
}
