package main

import "testing"

func fig(numCPU int, points ...map[string]any) *figureFile {
	return &figureFile{Meta: figureMeta{NumCPU: numCPU}, Points: points}
}

func pt(workers float64, metrics map[string]float64) map[string]any {
	m := map[string]any{"workers": workers}
	for k, v := range metrics {
		m[k] = v
	}
	return m
}

func TestCompareFlagsRegression(t *testing.T) {
	base := fig(1, pt(1, map[string]float64{"q1_row_ms": 10, "q6_row_ms": 2}))
	fresh := fig(1, pt(1, map[string]float64{"q1_row_ms": 14, "q6_row_ms": 2.1}))
	lines, err := compare(base, fresh, 0.30, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, l := range lines {
		got[l.Metric] = l.Regression
	}
	if !got["q1_row_ms"] {
		t.Fatal("q1_row_ms +40% not flagged")
	}
	if got["q6_row_ms"] {
		t.Fatal("q6_row_ms +5% flagged")
	}
}

func TestCompareWithinThresholdPasses(t *testing.T) {
	base := fig(1, pt(1, map[string]float64{"q1_row_ms": 10}))
	fresh := fig(1, pt(1, map[string]float64{"q1_row_ms": 12.9}))
	lines, err := compare(base, fresh, 0.30, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 1 || lines[0].Regression {
		t.Fatalf("+29%% flagged as regression: %+v", lines)
	}
}

func TestCompareMinDeltaGuardsNoise(t *testing.T) {
	// +100% but only 0.1ms absolute: noise on a shared runner, not a
	// regression.
	base := fig(1, pt(1, map[string]float64{"q6_col_ms": 0.1}))
	fresh := fig(1, pt(1, map[string]float64{"q6_col_ms": 0.2}))
	lines, err := compare(base, fresh, 0.30, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if lines[0].Regression {
		t.Fatal("0.1ms delta flagged despite min-delta guard")
	}
}

func TestCompareOnlyWorkersOne(t *testing.T) {
	// A blow-up at 4 workers does not gate; only workers=1 compares.
	base := fig(1,
		pt(1, map[string]float64{"q1_row_ms": 10}),
		pt(4, map[string]float64{"q1_row_ms": 3}))
	fresh := fig(1,
		pt(1, map[string]float64{"q1_row_ms": 10}),
		pt(4, map[string]float64{"q1_row_ms": 30}))
	lines, err := compare(base, fresh, 0.30, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range lines {
		if l.Regression {
			t.Fatalf("multi-worker point gated: %+v", l)
		}
	}
}

func TestCompareIgnoresUnsharedAndNonMsKeys(t *testing.T) {
	base := fig(1, pt(1, map[string]float64{"q1_row_ms": 10, "reclaim_mbps": 100, "old_only_ms": 5}))
	fresh := fig(1, pt(1, map[string]float64{"q1_row_ms": 10, "reclaim_mbps": 10, "new_only_ms": 50}))
	lines, err := compare(base, fresh, 0.30, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 1 || lines[0].Metric != "q1_row_ms" {
		t.Fatalf("compared keys = %+v, want only q1_row_ms", lines)
	}
}

func TestShouldSkipEnvironmentMismatch(t *testing.T) {
	a := fig(1, pt(1, nil))
	b := fig(4, pt(1, nil))
	if _, skip := shouldSkip(a, b); !skip {
		t.Fatal("CPU-count mismatch not skipped")
	}
	c := fig(1, pt(1, nil))
	c.SF = 0.05
	d := fig(1, pt(1, nil))
	d.SF = 0.01
	if _, skip := shouldSkip(c, d); !skip {
		t.Fatal("scale-factor mismatch not skipped")
	}
	if _, skip := shouldSkip(a, fig(1, pt(1, nil))); skip {
		t.Fatal("matching environments skipped")
	}
}

func TestCompareNoWorkersOnePoint(t *testing.T) {
	base := fig(1, pt(2, map[string]float64{"q1_row_ms": 10}))
	fresh := fig(1, pt(1, map[string]float64{"q1_row_ms": 10}))
	if _, err := compare(base, fresh, 0.30, 0.25); err == nil {
		t.Fatal("missing workers=1 point not reported")
	}
}
