// Command benchdiff is the CI perf-regression gate: it compares a
// freshly emitted benchmark figure JSON (BENCH_parallel.json,
// BENCH_joins.json, BENCH_compact.json) against the committed baseline
// and fails when any matching measurement slowed down past the
// threshold.
//
// Usage:
//
//	benchdiff [-threshold 0.30] [-min-delta-ms 0.25] [-skip-missing] baseline.json fresh.json
//
// The comparison is deliberately conservative about what it gates on:
//
//   - Only the workers=1 point is compared. Baselines in this repo were
//     recorded on CI-class (often 1-CPU) containers, where multi-worker
//     points measure scheduler noise, not the engine; the 1-worker point
//     is the stable serial baseline every figure is required to keep
//     honest.
//   - Only metrics present in both files compare (keys ending in "_ms");
//     each key encodes its (query, layout) series — q1_row_ms matches
//     q1_row_ms, never q1_col_ms — so points match on (query, layout,
//     workers=1) exactly.
//   - When the two files' meta blocks disagree on the CPU count, or the
//     files disagree on the scale factor, the gate skips cleanly (exit 0
//     with a note): a curve recorded on different hardware or a
//     different dataset size is not a regression signal.
//   - Sub-threshold absolute deltas never fail: -min-delta-ms guards
//     the ratio test against sub-millisecond noise on shared runners.
//
// Exit codes: 0 ok or skipped, 1 regression, 2 usage/parse error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

type figureMeta struct {
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	GoVersion  string `json:"go_version"`
}

type figureFile struct {
	SF     float64          `json:"sf"`
	Meta   figureMeta       `json:"meta"`
	Points []map[string]any `json:"points"`
}

// diffLine is one compared metric at the workers=1 point.
type diffLine struct {
	Metric     string
	BaseMs     float64
	FreshMs    float64
	Regression bool
}

// workersOnePoint returns the figure's workers==1 point, or nil.
func workersOnePoint(f *figureFile) map[string]any {
	for _, pt := range f.Points {
		if w, ok := pt["workers"].(float64); ok && w == 1 {
			return pt
		}
	}
	return nil
}

// compare diffs every "_ms" metric the two workers=1 points share. A
// metric regresses when fresh > base*(1+threshold) and the absolute
// slowdown exceeds minDeltaMs.
func compare(base, fresh *figureFile, threshold, minDeltaMs float64) ([]diffLine, error) {
	bp, fp := workersOnePoint(base), workersOnePoint(fresh)
	if bp == nil || fp == nil {
		return nil, fmt.Errorf("no workers=1 point (baseline: %v, fresh: %v)", bp != nil, fp != nil)
	}
	keys := make([]string, 0, len(bp))
	for k := range bp {
		if strings.HasSuffix(k, "_ms") {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var lines []diffLine
	for _, k := range keys {
		bv, bok := bp[k].(float64)
		fv, fok := fp[k].(float64)
		if !bok || !fok || bv <= 0 {
			continue
		}
		lines = append(lines, diffLine{
			Metric:     k,
			BaseMs:     bv,
			FreshMs:    fv,
			Regression: fv > bv*(1+threshold) && fv-bv > minDeltaMs,
		})
	}
	return lines, nil
}

// shouldSkip reports whether the two figures were measured in
// environments too different to compare, with the reason.
func shouldSkip(base, fresh *figureFile) (string, bool) {
	if base.Meta.NumCPU != 0 && fresh.Meta.NumCPU != 0 && base.Meta.NumCPU != fresh.Meta.NumCPU {
		return fmt.Sprintf("CPU count mismatch (baseline %d, fresh %d): different hardware",
			base.Meta.NumCPU, fresh.Meta.NumCPU), true
	}
	if base.SF != 0 && fresh.SF != 0 && base.SF != fresh.SF {
		return fmt.Sprintf("scale-factor mismatch (baseline %v, fresh %v): not comparable",
			base.SF, fresh.SF), true
	}
	return "", false
}

func readFigure(path string) (*figureFile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f figureFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

func main() {
	var (
		threshold   = flag.Float64("threshold", 0.30, "relative slowdown that fails the gate (0.30 = 30%)")
		minDeltaMs  = flag.Float64("min-delta-ms", 0.25, "absolute slowdown (ms) below which a ratio miss is noise, not a regression")
		skipMissing = flag.Bool("skip-missing", false, "exit 0 when either file is missing (first run of a new figure)")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 0.30] [-min-delta-ms 0.25] [-skip-missing] baseline.json fresh.json")
		os.Exit(2)
	}
	basePath, freshPath := flag.Arg(0), flag.Arg(1)

	for _, p := range []string{basePath, freshPath} {
		if _, err := os.Stat(p); err != nil && *skipMissing {
			fmt.Printf("benchdiff: %s missing, skipping gate\n", p)
			return
		}
	}
	base, err := readFigure(basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	fresh, err := readFigure(freshPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	if reason, skip := shouldSkip(base, fresh); skip {
		fmt.Printf("benchdiff: %s, skipping gate\n", reason)
		return
	}

	lines, err := compare(base, fresh, *threshold, *minDeltaMs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %s vs %s: %v\n", basePath, freshPath, err)
		os.Exit(2)
	}
	regressions := 0
	fmt.Printf("benchdiff: %s vs %s (workers=1, threshold %.0f%%, min delta %.2fms)\n",
		basePath, freshPath, *threshold*100, *minDeltaMs)
	for _, l := range lines {
		mark := "  "
		if l.Regression {
			mark = "! "
			regressions++
		}
		fmt.Printf("  %s%-16s %8.3f -> %8.3f ms (%+.0f%%)\n",
			mark, l.Metric, l.BaseMs, l.FreshMs, 100*(l.FreshMs-l.BaseMs)/l.BaseMs)
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d metric(s) regressed past %.0f%%\n", regressions, *threshold*100)
		os.Exit(1)
	}
	fmt.Println("benchdiff: ok")
}
