// Command smcserve is the query service front door: it generates a
// TPC-H dataset at the requested scale factor, loads it into
// self-managed collections, starts the background Maintainer, and
// serves parameterized queries over HTTP (internal/serve).
//
// Endpoints: POST /query/{q1,q3,q6,q6window,q10} (typed JSON params;
// `{}` selects the TPC-H validation defaults), POST /query/q6window/rows
// (chunked NDJSON row stream), GET /queries (schema-derived wire
// contracts), GET /stats (core.Runtime.StatsSnapshot), GET /healthz
// (ready once the Maintainer is up). Per-request knobs ride the query
// string: ?workers=N&timeout_ms=M.
//
//	smcserve -addr :8642 -sf 0.05 -max-concurrent 64
//
// -oracle q{1,3,6,10} runs the serial (un-served) driver on the same
// dataset and prints its result instead of serving: the CI smoke
// compares a served response against this process-independent oracle.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/serve"
	"repro/internal/tpch"
)

func main() {
	var (
		addr          = flag.String("addr", ":8642", "listen address")
		sf            = flag.Float64("sf", 0.05, "TPC-H scale factor")
		seed          = flag.Uint64("seed", 42, "generator seed")
		layoutName    = flag.String("layout", "rowindirect", "collection layout: rowindirect, rowdirect, columnar")
		maxConc       = flag.Int("max-concurrent", 64, "admission slots (concurrent queries)")
		admitWait     = flag.Duration("admit-wait", 100*time.Millisecond, "bounded admission wait before a 429")
		defTimeout    = flag.Duration("timeout", 10*time.Second, "default per-request query deadline")
		defWorkers    = flag.Int("workers", 1, "default per-query scan fan-out")
		budget        = flag.Int64("budget", 0, "off-heap memory budget in bytes (0 = unlimited)")
		maintInterval = flag.Duration("maintain-interval", 250*time.Millisecond, "maintainer poll interval")
		oracle        = flag.String("oracle", "", "print the serial oracle result for q1|q3|q6|q10 and exit (no server)")
	)
	flag.Parse()

	var layout core.Layout
	switch *layoutName {
	case "rowindirect":
		layout = core.RowIndirect
	case "rowdirect":
		layout = core.RowDirect
	case "columnar":
		layout = core.Columnar
	default:
		fmt.Fprintf(os.Stderr, "smcserve: unknown -layout %q\n", *layoutName)
		os.Exit(2)
	}

	rt, err := core.NewRuntime(core.Options{
		MemoryBudget:      *budget,
		CompactionPacking: core.PackCluster,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "smcserve: runtime: %v\n", err)
		os.Exit(1)
	}
	defer rt.Close()

	fmt.Fprintf(os.Stderr, "smcserve: generating TPC-H SF=%v (seed %d)...\n", *sf, *seed)
	data := tpch.Generate(*sf, *seed)
	s := rt.MustSession()
	db, err := tpch.LoadSMC(rt, s, data, layout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "smcserve: load: %v\n", err)
		os.Exit(1)
	}
	q := tpch.NewSMCQueries(db)

	if *oracle != "" {
		runOracle(*oracle, q, s)
		return
	}

	mt := rt.StartMaintainer(mem.MaintainerConfig{Interval: *maintInterval})
	defer mt.Stop()

	srv := serve.New(rt, q, mt, serve.Config{
		MaxConcurrent:  *maxConc,
		AdmitWait:      *admitWait,
		DefaultTimeout: *defTimeout,
		DefaultWorkers: *defWorkers,
	})
	hs := &http.Server{Addr: *addr, Handler: srv}

	// Graceful shutdown: stop accepting, drain in-flight requests (their
	// contexts keep running), then close the runtime.
	idle := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Fprintln(os.Stderr, "smcserve: shutting down...")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
		close(idle)
	}()

	fmt.Fprintf(os.Stderr, "smcserve: serving %d lineitems on %s (layout %s, %d slots)\n",
		len(data.Lineitems), *addr, *layoutName, *maxConc)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "smcserve: %v\n", err)
		os.Exit(1)
	}
	<-idle
}

// runOracle prints the serial driver's result for one query at the
// TPC-H validation parameters. Q6 prints the bare sum (the smoke greps
// it against the served envelope); the row queries print one row per
// line.
func runOracle(name string, q *tpch.SMCQueries, s *core.Session) {
	p := tpch.DefaultParams()
	switch name {
	case "q1":
		for _, r := range q.Q1(s, p) {
			fmt.Printf("%+v\n", r)
		}
	case "q3":
		for _, r := range q.Q3(s, p) {
			fmt.Printf("%+v\n", r)
		}
	case "q6":
		fmt.Println(q.Q6(s, p))
	case "q10":
		for _, r := range q.Q10(s, p) {
			fmt.Printf("%+v\n", r)
		}
	default:
		fmt.Fprintf(os.Stderr, "smcserve: unknown -oracle %q (want q1|q3|q6|q10)\n", name)
		os.Exit(2)
	}
}
