// Command smcbench regenerates the paper's evaluation figures (§7).
//
// Usage:
//
//	smcbench -fig all            # every figure
//	smcbench -fig 11 -sf 0.05    # one figure at a larger scale factor
//	smcbench -fig 6,7,linq       # a subset
//
// Figures: 6 (reclamation threshold), 7 (allocation throughput),
// 8 (refresh streams), 9 (GC timeouts), 10 (enumeration), 11 (TPC-H vs
// managed), 12 (direct/columnar), 13 (vs column store), linq (LINQ vs
// compiled). Beyond-paper extensions: ext (TPC-H Q7–Q10 across all
// engines), ablation (design-choice ablations), par (parallel scan
// scaling over 1..NumCPU workers; -json writes BENCH_parallel.json),
// joins (parallel join scaling for Q3/Q5/Q7/Q8/Q9/Q10 over the unified
// query-pipeline layer; -json-joins writes BENCH_joins.json), compact
// (parallel compaction: reclamation throughput and Q1/Q6 interference
// over 1..NumCPU move workers; -json-compact writes BENCH_compact.json),
// prune (block-synopsis skip-scan: pruned vs unpruned Q6-style windowed
// scans over selectivity × heap fragmentation; -json-prune writes
// BENCH_prune.json), cluster (synopsis-aware clustered compaction vs
// size-only packing over churn → maintenance cycles plus Q3/Q4/Q10
// cross-edge key-set pruning; -json-cluster writes BENCH_cluster.json),
// serve (the HTTP front door under 1..512 concurrent clients, every
// served sum asserted against the serial oracle; -json-serve writes
// BENCH_serve.json), govern (adaptive memory governance: the served
// q6window path under budgets swept from unbounded down to 0.9x the
// measured working set — zero OOMs, typed 503s only, the degradation
// ladder's trims visible in the counters; -json-govern writes
// BENCH_govern.json).
// JSON output is stamped with GOMAXPROCS, NumCPU and the Go version so
// curves are self-describing.
//
// -cpuprofile/-memprofile write pprof profiles covering the selected
// figures (the heap profile is taken at exit, after a final GC).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/bench"
)

func main() {
	var (
		fig         = flag.String("fig", "all", "comma-separated figures: 6,7,8,9,10,11,12,13,linq,ext,ablation,par,joins,compact,prune,share,cluster,serve,govern or 'all'")
		sf          = flag.Float64("sf", 0.01, "TPC-H scale factor")
		seed        = flag.Uint64("seed", 42, "generator seed")
		reps        = flag.Int("reps", 3, "repetitions per measurement (median)")
		heap        = flag.Bool("heap-backend", false, "force the portable off-heap backend")
		jsonPath    = flag.String("json", "", "write the 'par' figure's result as JSON to this path")
		joinsPath   = flag.String("json-joins", "", "write the 'joins' figure's result as JSON to this path")
		compactPath = flag.String("json-compact", "", "write the 'compact' figure's result as JSON to this path")
		prunePath   = flag.String("json-prune", "", "write the 'prune' figure's result as JSON to this path")
		sharePath   = flag.String("json-share", "", "write the 'share' figure's result as JSON to this path")
		clusterPath = flag.String("json-cluster", "", "write the 'cluster' figure's result as JSON to this path")
		servePath   = flag.String("json-serve", "", "write the 'serve' figure's result as JSON to this path")
		governPath  = flag.String("json-govern", "", "write the 'govern' figure's result as JSON to this path")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile covering the selected figures to this path")
		memProfile  = flag.String("memprofile", "", "write a heap profile (taken at exit) to this path")
		workers     = flag.String("workers", "", "comma-separated worker counts for the 'par'/'joins'/'compact' figures (default 1,2,4..NumCPU)")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "smcbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "smcbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		path := *memProfile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "smcbench: -memprofile: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "smcbench: -memprofile: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	opts := bench.Options{SF: *sf, Seed: *seed, Reps: *reps, HeapBackend: *heap}
	// -workers applies to the 'par' and 'joins' figures; Figures 7/8 keep
	// their own default thread sweep.
	var parWorkers []int
	if *workers != "" {
		for _, w := range strings.Split(*workers, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(w))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "smcbench: bad -workers entry %q\n", w)
				os.Exit(2)
			}
			parWorkers = append(parWorkers, n)
		}
	}
	allFigs := []string{"6", "7", "8", "9", "10", "11", "12", "13", "linq", "ext", "ablation", "par", "joins", "compact", "prune", "share", "cluster", "serve", "govern"}
	want := map[string]bool{}
	if *fig == "all" {
		for _, f := range allFigs {
			want[f] = true
		}
	} else {
		known := map[string]bool{}
		for _, f := range allFigs {
			known[f] = true
		}
		for _, f := range strings.Split(*fig, ",") {
			f = strings.TrimSpace(f)
			if !known[f] {
				// Exit non-zero instead of silently doing nothing: a typo'd
				// figure name in a CI step must fail the step.
				fmt.Fprintf(os.Stderr, "smcbench: unknown figure %q (valid: %s or 'all')\n", f, strings.Join(allFigs, ","))
				os.Exit(2)
			}
			want[f] = true
		}
	}

	fail := func(name string, err error) {
		fmt.Fprintf(os.Stderr, "smcbench: figure %s: %v\n", name, err)
		os.Exit(1)
	}
	writeJSONFile := func(name, path string, write func(io.Writer) error) {
		f, err := os.Create(path)
		if err != nil {
			fail(name, err)
		}
		if err := write(f); err != nil {
			f.Close()
			fail(name, err)
		}
		if err := f.Close(); err != nil {
			fail(name, err)
		}
		fmt.Printf("wrote %s\n", path)
	}

	fmt.Printf("smcbench: sf=%v seed=%d reps=%d\n", *sf, *seed, *reps)
	if want["6"] {
		r, err := bench.Figure6(opts)
		if err != nil {
			fail("6", err)
		}
		r.Render().Render(os.Stdout)
	}
	if want["7"] {
		r, err := bench.Figure7(opts)
		if err != nil {
			fail("7", err)
		}
		r.Render().Render(os.Stdout)
	}
	if want["8"] {
		r, err := bench.Figure8(opts)
		if err != nil {
			fail("8", err)
		}
		r.Render().Render(os.Stdout)
	}
	if want["9"] {
		r, err := bench.Figure9(opts)
		if err != nil {
			fail("9", err)
		}
		r.Render().Render(os.Stdout)
	}
	if want["10"] {
		r, err := bench.Figure10(opts)
		if err != nil {
			fail("10", err)
		}
		r.Render().Render(os.Stdout)
	}
	if want["11"] {
		r, err := bench.Figure11(opts)
		if err != nil {
			fail("11", err)
		}
		r.Render().Render(os.Stdout)
	}
	if want["12"] {
		r, err := bench.Figure12(opts)
		if err != nil {
			fail("12", err)
		}
		r.Render().Render(os.Stdout)
	}
	if want["13"] {
		r, err := bench.Figure13(opts)
		if err != nil {
			fail("13", err)
		}
		r.Render().Render(os.Stdout)
	}
	if want["linq"] {
		r, err := bench.FigureLinq(opts)
		if err != nil {
			fail("linq", err)
		}
		r.Render().Render(os.Stdout)
	}
	if want["ext"] {
		r, err := bench.FigureExt(opts)
		if err != nil {
			fail("ext", err)
		}
		r.Render().Render(os.Stdout)
	}
	if want["ablation"] {
		r, err := bench.FigureAblation(opts)
		if err != nil {
			fail("ablation", err)
		}
		for _, tbl := range r.Render() {
			tbl.Render(os.Stdout)
		}
	}
	if want["par"] {
		parOpts := opts
		parOpts.Threads = parWorkers
		r, err := bench.FigureParallel(parOpts)
		if err != nil {
			fail("par", err)
		}
		r.Render().Render(os.Stdout)
		if *jsonPath != "" {
			writeJSONFile("par", *jsonPath, r.WriteJSON)
		}
	}
	if want["joins"] {
		joinOpts := opts
		joinOpts.Threads = parWorkers
		r, err := bench.FigureJoins(joinOpts)
		if err != nil {
			fail("joins", err)
		}
		r.Render().Render(os.Stdout)
		if *joinsPath != "" {
			writeJSONFile("joins", *joinsPath, r.WriteJSON)
		}
	}
	if want["compact"] {
		compactOpts := opts
		compactOpts.Threads = parWorkers
		r, err := bench.FigureCompact(compactOpts)
		if err != nil {
			fail("compact", err)
		}
		r.Render().Render(os.Stdout)
		if *compactPath != "" {
			writeJSONFile("compact", *compactPath, r.WriteJSON)
		}
	}
	if want["prune"] {
		r, err := bench.FigurePrune(opts)
		if err != nil {
			fail("prune", err)
		}
		r.Render().Render(os.Stdout)
		if *prunePath != "" {
			writeJSONFile("prune", *prunePath, r.WriteJSON)
		}
	}
	if want["share"] {
		r, err := bench.FigureShare(opts)
		if err != nil {
			fail("share", err)
		}
		r.Render().Render(os.Stdout)
		if *sharePath != "" {
			writeJSONFile("share", *sharePath, r.WriteJSON)
		}
	}
	if want["cluster"] {
		r, err := bench.FigureCluster(opts)
		if err != nil {
			fail("cluster", err)
		}
		r.Render().Render(os.Stdout)
		if *clusterPath != "" {
			writeJSONFile("cluster", *clusterPath, r.WriteJSON)
		}
	}
	if want["serve"] {
		r, err := bench.FigureServe(opts)
		if err != nil {
			fail("serve", err)
		}
		r.Render().Render(os.Stdout)
		if *servePath != "" {
			writeJSONFile("serve", *servePath, r.WriteJSON)
		}
	}
	if want["govern"] {
		r, err := bench.FigureGovern(opts)
		if err != nil {
			fail("govern", err)
		}
		r.Render().Render(os.Stdout)
		if *governPath != "" {
			writeJSONFile("govern", *governPath, r.WriteJSON)
		}
	}
}
