package repro_test

// One testing.B benchmark per figure/table of the paper's evaluation
// (§7). Each benchmark delegates to the same measurement kernels that
// cmd/smcbench uses, at a scale factor sized for `go test -bench`.
// Per-op numbers correspond to one full experiment at that scale.
//
// The figure-by-figure comparison against the paper's reported shapes is
// recorded in EXPERIMENTS.md; run `go run ./cmd/smcbench -fig all` for
// the rendered tables.

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/tpch"
)

const benchSF = 0.005

func benchOpts() bench.Options {
	return bench.Options{SF: benchSF, Seed: 42, Reps: 1, Threads: []int{1, 2}}
}

// BenchmarkFigure6_ReclamationThreshold sweeps the reclamation threshold
// (Fig. 6): allocation/removal throughput, query time and memory.
func BenchmarkFigure6_ReclamationThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure6(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7_AllocationThroughput measures batch allocation
// throughput across collection types and thread counts (Fig. 7).
func BenchmarkFigure7_AllocationThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure7(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure8_RefreshStreams measures TPC-H refresh-stream
// throughput (Fig. 8).
func BenchmarkFigure8_RefreshStreams(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure8(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure9_GCTimeouts measures the longest scheduling timeout
// caused by GC while collections of growing size stay resident (Fig. 9).
// This benchmark is time-based (fixed measurement windows), so interpret
// the table from cmd/smcbench rather than ns/op.
func BenchmarkFigure9_GCTimeouts(b *testing.B) {
	if testing.Short() {
		b.Skip("fixed-duration experiment")
	}
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure9(bench.Options{SF: 0.002, Seed: 42, Reps: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure10_Enumeration measures simple and nested enumeration in
// fresh and worn collection states (Fig. 10).
func BenchmarkFigure10_Enumeration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure10(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure11_TPCHvsManaged runs Q1–Q6 over List, Dictionary and
// both SMC access styles (Fig. 11).
func BenchmarkFigure11_TPCHvsManaged(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure11(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure12_DirectAndColumnar runs Q1–Q6 over the three SMC
// layout variants (Fig. 12).
func BenchmarkFigure12_DirectAndColumnar(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure12(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure13_VsColumnStore runs Q1–Q6 over the column-store
// stand-in and the SMC variants (Fig. 13).
func BenchmarkFigure13_VsColumnStore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure13(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLinqVsCompiled measures the §7 in-text LINQ overhead claim.
func BenchmarkLinqVsCompiled(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.FigureLinq(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigureExt_Q7toQ10 runs the beyond-paper extension: TPC-H
// Q7–Q10 across every engine (the Figure 11–13 series on the
// join-heaviest queries).
func BenchmarkFigureExt_Q7toQ10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.FigureExt(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigureAblation runs the design-choice ablations from DESIGN.md:
// critical-section granularity, deref fast path, coalesced marshalling,
// block-size sweep.
func BenchmarkFigureAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.FigureAblation(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Per-query micro benchmarks (the raw series behind Figures 11–13),
// one representative per engine so `go test -bench` surfaces per-query
// costs directly. ---

func loadedEnv(b *testing.B) (*tpch.ManagedDB, *tpch.SMCQueries, *core.Session, *colstore.DB, func()) {
	b.Helper()
	data := tpch.Generate(benchSF, 42)
	mdb := tpch.LoadManaged(data)
	rt := core.MustRuntime(core.Options{})
	s := rt.MustSession()
	sdb, err := tpch.LoadSMC(rt, s, data, core.RowDirect)
	if err != nil {
		b.Fatal(err)
	}
	return mdb, tpch.NewSMCQueries(sdb), s, colstore.Load(data), func() {
		s.Close()
		rt.Close()
	}
}

func BenchmarkQ1_List(b *testing.B) {
	mdb, _, _, _, done := loadedEnv(b)
	defer done()
	p := tpch.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := tpch.ListQ1(mdb, p); len(rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkQ1_SMCUnsafe(b *testing.B) {
	_, q, s, _, done := loadedEnv(b)
	defer done()
	p := tpch.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := q.Q1(s, p); len(rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkQ1_ColumnStore(b *testing.B) {
	_, _, _, cs, done := loadedEnv(b)
	defer done()
	p := tpch.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := cs.Q1(p); len(rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkQ5_List(b *testing.B) {
	mdb, _, _, _, done := loadedEnv(b)
	defer done()
	p := tpch.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := tpch.ListQ5(mdb, p); len(rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkQ5_SMCDirect(b *testing.B) {
	_, q, s, _, done := loadedEnv(b)
	defer done()
	p := tpch.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := q.Q5(s, p); len(rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkQ6_SMCUnsafe(b *testing.B) {
	_, q, s, _, done := loadedEnv(b)
	defer done()
	p := tpch.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if q.Q6(s, p).IsZero() {
			b.Fatal("zero result")
		}
	}
}

func BenchmarkQ6_ColumnStore(b *testing.B) {
	_, _, _, cs, done := loadedEnv(b)
	defer done()
	p := tpch.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cs.Q6(p).IsZero() {
			b.Fatal("zero result")
		}
	}
}

// BenchmarkAdd_SMC measures single-object Add cost (the Fig. 7 kernel).
func BenchmarkAdd_SMC(b *testing.B) {
	rt := core.MustRuntime(core.Options{})
	defer rt.Close()
	s := rt.MustSession()
	defer s.Close()
	coll := core.MustCollection[tpch.SLineitem](rt, "lineitem", core.RowIndirect)
	data := tpch.Generate(0.001, 42)
	rows := data.Lineitems
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := tpch.SLineitem{
			OrderKey: rows[i%len(rows)].OrderKey,
			Quantity: rows[i%len(rows)].Quantity,
			ShipDate: rows[i%len(rows)].ShipDate,
			Comment:  rows[i%len(rows)].Comment,
		}
		if _, err := coll.Add(s, &l); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAddRemove_SMC measures the full object lifecycle including
// limbo-slot reclamation.
func BenchmarkAddRemove_SMC(b *testing.B) {
	rt := core.MustRuntime(core.Options{})
	defer rt.Close()
	s := rt.MustSession()
	defer s.Close()
	coll := core.MustCollection[tpch.SLineitem](rt, "lineitem", core.RowIndirect)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := tpch.SLineitem{OrderKey: int64(i)}
		r, err := coll.Add(s, &l)
		if err != nil {
			b.Fatal(err)
		}
		if err := coll.Remove(s, r); err != nil {
			b.Fatal(err)
		}
		if i%1024 == 0 {
			rt.Manager().TryAdvanceEpoch()
		}
	}
}
