#!/usr/bin/env bash
# End-to-end smoke of the smcserve HTTP front door, run by `make
# serve-smoke` (CI calls that target). Boots the server on a small
# scale factor and asserts, from outside the process:
#
#   1. /healthz goes ready and a parameterized Q6 answers 200 with the
#      same sum the serial (un-served) oracle prints for the dataset;
#   2. a server-side deadline (timeout_ms) comes back as a typed 504;
#   3. a client-abandoned request (curl --max-time) returns promptly on
#      the client and strands nothing on the server: /stats quiesces to
#      zero in-flight with balanced session/epoch/arena ledgers;
#   4. /stats carries the front-door admission counters;
#   5. /healthz reports the memory-pressure level (degraded-but-serving
#      is a 200, not a 503) and /stats carries the Governor ledger.
set -euo pipefail
cd "$(dirname "$0")/.."

SF="${SF:-0.01}"
ADDR="${ADDR:-127.0.0.1:8642}"
BIN="${BIN:-$(mktemp -d)/smcserve}"

go build -o "$BIN" ./cmd/smcserve

echo "serve-smoke: serial oracle at SF=$SF"
ORACLE="$("$BIN" -sf "$SF" -oracle q6 2>/dev/null)"
[ -n "$ORACLE" ] || { echo "serve-smoke: empty oracle"; exit 1; }

"$BIN" -sf "$SF" -addr "$ADDR" &
PID=$!
cleanup() { kill "$PID" 2>/dev/null || true; wait "$PID" 2>/dev/null || true; }
trap cleanup EXIT

echo "serve-smoke: waiting for readiness"
ready=
for _ in $(seq 1 150); do
    if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then ready=1; break; fi
    kill -0 "$PID" 2>/dev/null || { echo "serve-smoke: server exited during startup"; exit 1; }
    sleep 0.2
done
[ -n "$ready" ] || { echo "serve-smoke: /healthz never went ready"; exit 1; }

echo "serve-smoke: served q6 vs oracle"
SUM=$(curl -fsS -X POST -H 'Content-Type: application/json' -d '{}' "http://$ADDR/query/q6" \
    | python3 -c 'import json,sys; print(json.load(sys.stdin)["sum"])')
if [ "$SUM" != "$ORACLE" ]; then
    echo "serve-smoke: served q6 sum $SUM != serial oracle $ORACLE"
    exit 1
fi

echo "serve-smoke: parameterized q6 (shifted date) answers 200"
curl -fsS -X POST -H 'Content-Type: application/json' -d '{"date":"1995-01-01"}' \
    "http://$ADDR/query/q6" \
    | python3 -c 'import json,sys; s=json.load(sys.stdin)["sum"]; assert "." in s, s'

echo "serve-smoke: server-side deadline is a typed 504"
CODE=$(curl -s -o /tmp/serve_smoke_504.json -w '%{http_code}' --max-time 10 \
    -X POST -H 'Content-Type: application/json' -d '{"reps":1000000}' \
    "http://$ADDR/query/q6window?timeout_ms=100")
if [ "$CODE" != "504" ]; then
    echo "serve-smoke: deadline request returned $CODE (want 504):"
    cat /tmp/serve_smoke_504.json
    exit 1
fi
python3 -c 'import json; e=json.load(open("/tmp/serve_smoke_504.json"))["error"]; assert e["code"]=="timeout", e'

echo "serve-smoke: client-abandoned request leaks nothing"
set +e
curl -sS -o /dev/null --max-time 1 \
    -X POST -H 'Content-Type: application/json' -d '{"reps":1000000}' \
    "http://$ADDR/query/q6window?timeout_ms=60000"
RC=$?
set -e
# 28 = curl gave up (operation timed out): the client walked away while
# the query was mid-scan.
if [ "$RC" != "28" ]; then
    echo "serve-smoke: expected curl exit 28 (client timeout), got $RC"
    exit 1
fi
quiesced=
for _ in $(seq 1 50); do
    if curl -fsS "http://$ADDR/stats" | python3 -c '
import json, sys
st = json.load(sys.stdin)
ok = (st["Serve"]["InFlight"] == 0
      and st["EpochPins"] == 0
      and st["SessionsLeased"] == st["SessionsReturned"]
      and all(p["Leases"] == p["Returns"] for p in st["ArenaPools"] or []))
sys.exit(0 if ok else 1)
'; then quiesced=1; break; fi
    sleep 0.1
done
[ -n "$quiesced" ] || { echo "serve-smoke: abandoned request never quiesced:"; curl -fsS "http://$ADDR/stats"; exit 1; }

echo "serve-smoke: admission counters surfaced in /stats"
curl -fsS "http://$ADDR/stats" | python3 -c '
import json, sys
sv = json.load(sys.stdin)["Serve"]
assert sv["Requests"] >= 4 and sv["Admitted"] >= 4, sv
assert sv["Canceled"] >= 2, sv  # the 504 and the abandoned client
'

echo "serve-smoke: /healthz reports the pressure level"
curl -fsS "http://$ADDR/healthz" | python3 -c '
import json, sys
hz = json.load(sys.stdin)
assert hz["ok"] is True, hz
assert hz["pressure"] in ("healthy", "tight", "critical"), hz
assert isinstance(hz["degraded"], bool), hz
'

echo "serve-smoke: governor ledger surfaced in /stats"
curl -fsS "http://$ADDR/stats" | python3 -c '
import json, sys
gv = json.load(sys.stdin)["Governor"]
assert gv["Level"] in ("healthy", "tight", "critical"), gv
# Governed total = heap + retained arenas + synopses; each part must be
# accounted and the sum must hold exactly.
assert gv["GovernedUsed"] == gv["HeapUsed"] + gv["ArenaRetained"] + gv["SynopsisBytes"], gv
assert gv["GovernedUsed"] > 0, gv
'

echo "serve-smoke: ok"
