// Quickstart: the §2 example — a self-managed Person collection whose
// objects live off-heap, owned by the collection, with references that
// become null on removal.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

// Person is a tabular type: fixed-size fields and strings only. Strings
// are owned by the object (paper §2): the collection reclaims their
// storage with the object's memory slot.
type Person struct {
	Name string
	Age  int32
}

func main() {
	// The runtime owns the off-heap memory manager, epoch machinery and
	// compactor shared by all collections.
	rt, err := core.NewRuntime(core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	// Every goroutine interacts through its own session (the paper's
	// thread-local allocation and critical-section state).
	s := rt.MustSession()
	defer s.Close()

	persons := core.MustCollection[Person](rt, "persons", core.RowIndirect)

	// Add allocates the object inside the collection's private memory
	// blocks and returns a reference — the §2 code example verbatim.
	adam, err := persons.Add(s, &Person{Name: "Adam", Age: 27})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 9999; i++ {
		persons.MustAdd(s, &Person{Name: fmt.Sprintf("Person#%04d", i), Age: int32(18 + i%60)})
	}
	fmt.Printf("collection holds %d persons in %d KiB off-heap\n",
		persons.Len(), persons.MemoryBytes()/1024)

	// Dereference: Get copies the object out.
	p, err := persons.Get(s, adam)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adam = %+v\n", p)

	// Enumerate in memory order (bag semantics) — this is the access
	// pattern SMCs are optimized for.
	var adults int
	persons.ForEach(s, func(_ core.Ref[Person], p *Person) bool {
		if p.Age >= 30 {
			adults++
		}
		return true
	})
	fmt.Printf("persons aged 30+: %d\n", adults)

	// Remove frees the object; all references become null (§2).
	if err := persons.Remove(s, adam); err != nil {
		log.Fatal(err)
	}
	if _, err := persons.Get(s, adam); err == core.ErrNullReference {
		fmt.Println("after Remove, adam's reference is null — as specified")
	}
}
