// columnar_analytics shows the §4.1 columnar layout: the same collection
// API, but each field lives in a per-block column segment. Scan-heavy
// queries touch only the columns they need, which is visible in the
// timings this example prints for row versus columnar layouts.
package main

import (
	"fmt"
	"log"
	"time"
	"unsafe"

	"repro/internal/core"
	"repro/internal/decimal"
	"repro/internal/mem"
	"repro/internal/tpch"
	"repro/internal/types"
)

func main() {
	const sf = 0.02
	data := tpch.Generate(sf, 42)

	rt, err := core.NewRuntime(core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()
	s := rt.MustSession()
	defer s.Close()

	run := func(layout core.Layout) (time.Duration, decimal.Dec128, int64) {
		coll := core.MustCollection[tpch.SLineitem](rt, "lineitem-"+layout.String(), layout)
		for i := range data.Lineitems {
			l := data.Lineitems[i]
			coll.MustAdd(s, &tpch.SLineitem{
				OrderKey: l.OrderKey, Quantity: l.Quantity,
				ExtendedPrice: l.ExtendedPrice, Discount: l.Discount, Tax: l.Tax,
				ReturnFlag: l.ReturnFlag, LineStatus: l.LineStatus,
				ShipDate: l.ShipDate, CommitDate: l.CommitDate, ReceiptDate: l.ReceiptDate,
				ShipInstruct: l.ShipInstruct, ShipMode: l.ShipMode, Comment: l.Comment,
			})
		}
		shipF := coll.Schema().MustField("ShipDate")
		extF := coll.Schema().MustField("ExtendedPrice")
		discF := coll.Schema().MustField("Discount")
		cutoff := types.MustDate("1995-01-01")

		// Q6-style scan: reads 3 of 16 columns. Columnar blocks stream
		// just those arrays; row blocks drag whole 170-byte slots
		// through the cache.
		var revenue decimal.Dec128
		t0 := time.Now()
		s.Enter()
		en := coll.Enumerate(s)
		for {
			blk, ok := en.NextBlock()
			if !ok {
				break
			}
			n := blk.Capacity()
			if layout == core.Columnar {
				ship := blk.ColBase(shipF)
				ext := blk.ColBase(extF)
				disc := blk.ColBase(discF)
				for i := 0; i < n; i++ {
					if !blk.SlotIsValid(i) {
						continue
					}
					if *(*types.Date)(unsafe.Add(ship, uintptr(i)*4)) < cutoff {
						continue
					}
					decimal.MulAdd(&revenue,
						(*decimal.Dec128)(unsafe.Add(ext, uintptr(i)*16)),
						(*decimal.Dec128)(unsafe.Add(disc, uintptr(i)*16)))
				}
				continue
			}
			for i := 0; i < n; i++ {
				if !blk.SlotIsValid(i) {
					continue
				}
				if *(*types.Date)(blk.FieldPtr(i, shipF)) < cutoff {
					continue
				}
				decimal.MulAdd(&revenue,
					(*decimal.Dec128)(blk.FieldPtr(i, extF)),
					(*decimal.Dec128)(blk.FieldPtr(i, discF)))
			}
		}
		en.Close()
		s.Exit()
		el := time.Since(t0)
		_ = mem.RowIndirect
		return el, revenue, coll.MemoryBytes() / 1024
	}

	rowTime, rowRev, rowKiB := run(core.RowIndirect)
	colTime, colRev, colKiB := run(core.Columnar)

	fmt.Printf("lineitems: %d\n\n", len(data.Lineitems))
	fmt.Printf("%-10s %12s %18s %10s\n", "layout", "scan time", "revenue", "memory")
	fmt.Printf("%-10s %12v %18s %9dK\n", "row", rowTime.Round(time.Microsecond), rowRev, rowKiB)
	fmt.Printf("%-10s %12v %18s %9dK\n", "columnar", colTime.Round(time.Microsecond), colRev, colKiB)
	if rowRev != colRev {
		log.Fatal("layouts disagree on the query result!")
	}
	fmt.Printf("\ncolumnar/row scan-time ratio: %.2f\n", float64(colTime)/float64(rowTime))
}
