// bi_dashboard models the paper's motivating application (§1): a business
// intelligence tool that loads the company's recent business data into
// collections of objects at startup and then answers analytical queries
// that scan most of the data and condense it into a few summary values.
//
// It loads a TPC-H dataset into self-managed collections and runs the
// pricing-summary and shipping-priority "dashboard widgets" (Q1 and Q3),
// comparing the compiled SMC queries with the managed-collection path.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/tpch"
)

func main() {
	const sf = 0.01
	fmt.Printf("loading TPC-H sf=%v into self-managed collections...\n", sf)
	data := tpch.Generate(sf, 42)

	rt, err := core.NewRuntime(core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()
	s := rt.MustSession()
	defer s.Close()

	t0 := time.Now()
	sdb, err := tpch.LoadSMC(rt, s, data, core.RowDirect)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d lineitems / %d orders / %d customers in %v\n",
		sdb.Lineitems.Len(), sdb.Orders.Len(), sdb.Customers.Len(),
		time.Since(t0).Round(time.Millisecond))

	queries := tpch.NewSMCQueries(sdb)
	params := tpch.DefaultParams()

	// Widget 1: pricing summary (Q1).
	t0 = time.Now()
	q1 := queries.Q1(s, params)
	fmt.Printf("\npricing summary (%v):\n", time.Since(t0).Round(time.Microsecond))
	fmt.Println("  flag status        sum_qty        sum_base_price  count")
	for _, r := range q1 {
		fmt.Printf("  %c    %c      %14s  %18s  %6d\n",
			rune(r.ReturnFlag), rune(r.LineStatus), r.SumQty, r.SumBase, r.Count)
	}

	// Widget 2: top unshipped orders by revenue (Q3).
	t0 = time.Now()
	q3 := queries.Q3(s, params)
	fmt.Printf("\ntop unshipped orders in %q (%v):\n",
		params.Q3Segment, time.Since(t0).Round(time.Microsecond))
	for i, r := range q3 {
		fmt.Printf("  %2d. order %-8d revenue %14s  placed %s\n",
			i+1, r.OrderKey, r.Revenue, r.OrderDate)
	}

	// The same dashboards over the managed object graph, for comparison.
	mdb := tpch.LoadManaged(data)
	t0 = time.Now()
	_ = tpch.ListQ1(mdb, params)
	listQ1 := time.Since(t0)
	t0 = time.Now()
	_ = tpch.ListQ3(mdb, params)
	listQ3 := time.Since(t0)
	fmt.Printf("\nmanaged List baseline: Q1 %v, Q3 %v\n",
		listQ1.Round(time.Microsecond), listQ3.Round(time.Microsecond))
	fmt.Printf("off-heap footprint: lineitem collection %d KiB\n",
		sdb.Lineitems.MemoryBytes()/1024)
}
