// Parallel scan: the multi-core query engine over self-managed
// collections. One §5.2 compaction-decision pass resolves the block
// list, then N worker sessions — each in its own epoch critical
// section — claim blocks from an atomic cursor (work stealing) and fold
// into per-worker partial accumulators that merge at the end.
//
// The demo loads TPC-H lineitems, then runs the same full-collection
// aggregations at 1 worker and at NumCPU workers: the typed
// ParallelAggregate convenience API, the compiled Q1/Q6 kernels, and a
// filtered ParallelForEach count.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/decimal"
	"repro/internal/tpch"
)

func main() {
	rt, err := core.NewRuntime(core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()
	s := rt.MustSession()
	defer s.Close()

	// A background compactor may run freely: a compaction planned while
	// a parallel scan is open aborts at its epoch wait (the coordinator
	// pins the snapshot epoch), and one planned between scans proceeds.
	stopCompactor := rt.StartCompactor(50 * time.Millisecond)
	defer stopCompactor()

	fmt.Println("generating TPC-H data and loading collections (columnar layout)...")
	data := tpch.Generate(0.05, 42)
	db, err := tpch.LoadSMC(rt, s, data, core.Columnar)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d lineitems off-heap in %d blocks\n\n",
		db.Lineitems.Len(), db.Lineitems.Context().Blocks())

	q := tpch.NewSMCQueries(db)
	p := tpch.DefaultParams()
	workers := runtime.NumCPU()

	run := func(name string, w int, fn func(w int)) time.Duration {
		t0 := time.Now()
		fn(w)
		d := time.Since(t0)
		fmt.Printf("  %-28s %d worker(s): %v\n", name, w, d.Round(time.Microsecond))
		return d
	}

	fmt.Println("compiled Q1 (pricing summary):")
	base := run("Q1Par", 1, func(w int) { q.Q1Par(s, p, w) })
	par := run("Q1Par", workers, func(w int) { q.Q1Par(s, p, w) })
	fmt.Printf("  speedup: %.2fx\n\n", float64(base)/float64(par))

	fmt.Println("compiled Q6 (revenue forecast):")
	base = run("Q6Par", 1, func(w int) { q.Q6Par(s, p, w) })
	par = run("Q6Par", workers, func(w int) { q.Q6Par(s, p, w) })
	fmt.Printf("  speedup: %.2fx\n\n", float64(base)/float64(par))

	// Typed API: revenue sum via per-worker partial accumulators.
	fmt.Println("typed ParallelAggregate (sum of extendedprice*(1-discount)):")
	one := decimal.FromInt64(1)
	var revenue decimal.Dec128
	for _, w := range []int{1, workers} {
		t0 := time.Now()
		revenue, err = core.ParallelAggregate(db.Lineitems, s, w,
			func(int) decimal.Dec128 { return decimal.Dec128{} },
			func(acc decimal.Dec128, _ core.Ref[tpch.SLineitem], v *tpch.SLineitem) decimal.Dec128 {
				return acc.Add(v.ExtendedPrice.Mul(one.Sub(v.Discount)))
			},
			func(a, b decimal.Dec128) decimal.Dec128 { return a.Add(b) },
		)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d worker(s): %v\n", w, time.Since(t0).Round(time.Microsecond))
	}
	fmt.Printf("  total revenue: %s\n\n", revenue)

	// Typed API: filtered visitation with early-stop support.
	fmt.Println("typed ParallelForEach (count lineitems shipped by rail):")
	var counts = make([]int64, workers)
	t0 := time.Now()
	if err := db.Lineitems.ParallelForEach(s, workers, func(w int, _ core.Ref[tpch.SLineitem], v *tpch.SLineitem) bool {
		if v.ShipMode == "RAIL" {
			counts[w]++
		}
		return true
	}); err != nil {
		log.Fatal(err)
	}
	total := int64(0)
	for _, c := range counts {
		total += c
	}
	fmt.Printf("  %d rail shipments (%d workers, %v)\n", total, workers, time.Since(t0).Round(time.Microsecond))
}
