// refresh_streams demonstrates the paper's Figure 8 workload as an
// application: concurrent writers continuously refresh a self-managed
// lineitem collection (insert a batch / remove a predicate-selected
// batch) while an analyst goroutine keeps running a revenue query over
// the live data. Epoch-based reclamation keeps readers safe without
// locks; removed objects' slots return to circulation two epochs later.
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/decimal"
	"repro/internal/mem"
	"repro/internal/tpch"
)

func main() {
	const sf = 0.005
	data := tpch.Generate(sf, 7)

	rt, err := core.NewRuntime(core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()
	stopCompactor := rt.StartCompactor(5 * time.Millisecond)
	defer stopCompactor()

	loader := rt.MustSession()
	coll := core.MustCollection[tpch.SLineitem](rt, "lineitem", core.RowIndirect)
	for i := range data.Lineitems {
		l := row(&data.Lineitems[i])
		coll.MustAdd(loader, &l)
	}
	loader.Close()
	fmt.Printf("initial population: %d lineitems, %d KiB off-heap\n",
		coll.Len(), coll.MemoryBytes()/1024)

	var (
		wg      sync.WaitGroup
		stop    = make(chan struct{})
		streams atomic.Int64
		queries atomic.Int64
		batch   = len(data.Lineitems) / 1000
	)
	if batch < 1 {
		batch = 1
	}

	// Two refresh writers.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			s := rt.MustSession()
			defer s.Close()
			round := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Insert stream: add 0.1% of the initial population.
				for i := 0; i < batch; i++ {
					l := row(&data.Lineitems[(round*batch+i)%len(data.Lineitems)])
					coll.MustAdd(s, &l)
				}
				// Remove stream: one enumeration removing a batch
				// selected by orderkey predicate.
				victimKey := int64((round*7 + wid) % 1500)
				var victims []core.Ref[tpch.SLineitem]
				coll.ForEach(s, func(r core.Ref[tpch.SLineitem], l *tpch.SLineitem) bool {
					if l.OrderKey%1500 == victimKey {
						victims = append(victims, r)
					}
					return len(victims) < batch
				})
				for _, v := range victims {
					_ = coll.Remove(s, v) // racing removals null out; fine
				}
				streams.Add(2)
				round++
			}
		}(w)
	}

	// One analyst running the revenue scan.
	wg.Add(1)
	go func() {
		defer wg.Done()
		s := rt.MustSession()
		defer s.Close()
		extF := coll.Schema().MustField("ExtendedPrice")
		discF := coll.Schema().MustField("Discount")
		for {
			select {
			case <-stop:
				return
			default:
			}
			var revenue decimal.Dec128
			coll.Context().ForEachValid(s.Mem(), func(b *mem.Block, slot int) bool {
				ext := (*decimal.Dec128)(b.FieldPtr(slot, extF))
				d := (*decimal.Dec128)(b.FieldPtr(slot, discF))
				decimal.MulAdd(&revenue, ext, d)
				return true
			})
			queries.Add(1)
		}
	}()

	time.Sleep(2 * time.Second)
	close(stop)
	wg.Wait()

	st := rt.Manager().Stats()
	fmt.Printf("2s of concurrent refresh + analytics:\n")
	fmt.Printf("  refresh streams completed: %d\n", streams.Load())
	fmt.Printf("  analytic queries completed: %d\n", queries.Load())
	fmt.Printf("  final population: %d lineitems\n", coll.Len())
	fmt.Printf("  allocations=%d frees=%d slots reclaimed=%d epoch advances=%d\n",
		st.Allocs.Load(), st.Frees.Load(), st.SlotsReclaimed.Load(), st.EpochAdvances.Load())
	fmt.Printf("  compactions=%d objects moved=%d\n",
		st.Compactions.Load(), st.ObjectsMoved.Load())
}

func row(l *tpch.LineitemRow) tpch.SLineitem {
	return tpch.SLineitem{
		OrderKey: l.OrderKey, LineNumber: l.LineNumber,
		Quantity: l.Quantity, ExtendedPrice: l.ExtendedPrice,
		Discount: l.Discount, Tax: l.Tax,
		ReturnFlag: l.ReturnFlag, LineStatus: l.LineStatus,
		ShipDate: l.ShipDate, CommitDate: l.CommitDate, ReceiptDate: l.ReceiptDate,
		ShipInstruct: l.ShipInstruct, ShipMode: l.ShipMode, Comment: l.Comment,
	}
}
