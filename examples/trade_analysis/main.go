// Trade analysis: the extended query set (TPC-H Q7–Q10) over
// self-managed collections with direct pointers (§6), demonstrating the
// join-heaviest workloads of the suite — international trade volumes,
// market shares, product-line profits and returned-item reports — plus
// the operational machinery around them: the background compactor (§5)
// and the incarnation-overflow scanner (§3.1).
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/tpch"
)

func main() {
	rt, err := core.NewRuntime(core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()
	s := rt.MustSession()
	defer s.Close()

	// Background threads: the §5 maintenance scheduler (threshold-driven
	// parallel compaction) and the §3.1 overflow scanner.
	mt := rt.StartMaintainer(mem.MaintainerConfig{Interval: 50 * time.Millisecond})
	defer mt.Stop()
	stopScanner := rt.StartOverflowScanner(time.Second)
	defer stopScanner()

	fmt.Println("generating TPC-H data and loading collections (direct-pointer layout)...")
	data := tpch.Generate(0.02, 42)
	db, err := tpch.LoadSMC(rt, s, data, core.RowDirect)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d lineitems, %d orders, %d customers off-heap\n\n",
		db.Lineitems.Len(), db.Orders.Len(), db.Customers.Len())

	q := tpch.NewSMCQueries(db)
	p := tpch.DefaultParams()

	// Q7 — volume shipping between two trading nations.
	t0 := time.Now()
	q7 := q.Q7(s, p)
	fmt.Printf("Q7 (%s <-> %s trade volume), %v:\n", p.Q7Nation1, p.Q7Nation2, time.Since(t0).Round(time.Microsecond))
	for _, r := range q7 {
		fmt.Printf("  %-10s -> %-10s %d  %12s\n", r.SuppNation, r.CustNation, r.Year, r.Revenue)
	}

	// Q8 — national market share inside a region.
	t0 = time.Now()
	q8 := q.Q8(s, p)
	fmt.Printf("\nQ8 (%s market share in %s for %q), %v:\n",
		p.Q8Nation, p.Q8Region, p.Q8Type, time.Since(t0).Round(time.Microsecond))
	for _, r := range q8 {
		fmt.Printf("  %d  share %s\n", r.Year, r.MktShare)
	}

	// Q9 — product-line profit by nation and year.
	t0 = time.Now()
	q9 := q.Q9(s, p)
	fmt.Printf("\nQ9 (profit on %q parts), %v: %d nation-year groups; first rows:\n",
		p.Q9Color, time.Since(t0).Round(time.Microsecond), len(q9))
	for i, r := range q9 {
		if i == 5 {
			break
		}
		fmt.Printf("  %-12s %d  %14s\n", r.Nation, r.Year, r.SumProfit)
	}

	// Q10 — top returned-item customers for one quarter.
	t0 = time.Now()
	q10 := q.Q10(s, p)
	fmt.Printf("\nQ10 (returned items, quarter from %s), %v: top %d customers\n",
		p.Q10Date, time.Since(t0).Round(time.Microsecond), len(q10))
	for i, r := range q10 {
		if i == 5 {
			break
		}
		fmt.Printf("  %-22s %-12s %12s\n", r.Name, r.Nation, r.Revenue)
	}

	// Refresh churn: delete most lineitems, dropping block occupancy
	// under the 30% compaction threshold — no ad-hoc CompactNow call; the
	// maintainer notices the fragmentation and packs the blocks itself.
	fmt.Println("\nchurning: removing ~80% of lineitems, waiting for the maintainer to compact...")
	var victims []core.Ref[tpch.SLineitem]
	db.Lineitems.ForEach(s, func(r core.Ref[tpch.SLineitem], l *tpch.SLineitem) bool {
		if l.OrderKey%5 != 0 {
			victims = append(victims, r)
		}
		return true
	})
	for _, v := range victims {
		if err := db.Lineitems.Remove(s, v); err != nil {
			log.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for mt.Passes() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	q10b := q.Q10(s, p)
	fmt.Printf("after churn, %d maintainer pass(es): %d lineitems remain; Q10 returns %d rows\n",
		mt.Passes(), db.Lineitems.Len(), len(q10b))

	st := rt.Manager().Stats()
	fmt.Printf("\nmanager stats: %d allocs, %d frees, %d compactions, %d objects moved, %d groups moved, %.1f MB reclaimed\n",
		st.Allocs.Load(), st.Frees.Load(), st.Compactions.Load(), st.ObjectsMoved.Load(),
		st.GroupsMoved.Load(), float64(st.BytesReclaimed.Load())/(1<<20))
}
