// Parallel joins: the concurrent query-memory subsystem over
// self-managed collections. Every scan worker leases a private memory
// region from the query object's ArenaPool and builds its join/group
// state in a partitioned region table — zero shared mutable state in the
// hot loop — and the coordinator folds the workers' tables together
// partition by partition once the scan drains.
//
// The demo loads TPC-H with direct-pointer references (§6, the layout
// where reference joins are a single pointer chase), then runs the
// three reference-join queries Q3, Q5 and Q10 serially and fanned out
// over NumCPU workers, verifying the parallel rows match the serial
// ones exactly. It also shows the typed core.ParallelGroupBy API and
// the pool's retained-footprint bound.
package main

import (
	"fmt"
	"log"
	"reflect"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/decimal"
	"repro/internal/mem"
	"repro/internal/tpch"
)

func main() {
	rt, err := core.NewRuntime(core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()
	s := rt.MustSession()
	defer s.Close()

	// The background maintenance scheduler may run freely: parallel scans
	// pin their snapshot epoch, so a compaction pass planned mid-scan
	// aborts harmlessly. Passes fan their groups out over all cores.
	mt := rt.StartMaintainer(mem.MaintainerConfig{Interval: 50 * time.Millisecond})
	defer mt.Stop()

	fmt.Println("generating TPC-H data and loading collections (direct-pointer layout)...")
	data := tpch.Generate(0.05, 42)
	db, err := tpch.LoadSMC(rt, s, data, core.RowDirect)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d lineitems, %d orders, %d customers off-heap\n\n",
		db.Lineitems.Len(), db.Orders.Len(), db.Customers.Len())

	q := tpch.NewSMCQueries(db)
	p := tpch.DefaultParams()
	workers := runtime.NumCPU()

	type jq struct {
		name string
		ser  func() any
		par  func(w int) any
	}
	for _, query := range []jq{
		{"Q3 (shipping priority, 3-way join)",
			func() any { return q.Q3(s, p) },
			func(w int) any { return q.Q3Par(s, p, w) }},
		{"Q5 (local supplier volume, 5-way join)",
			func() any { return q.Q5(s, p) },
			func(w int) any { return q.Q5Par(s, p, w) }},
		{"Q10 (returned items, join + wide output)",
			func() any { return q.Q10(s, p) },
			func(w int) any { return q.Q10Par(s, p, w) }},
	} {
		fmt.Println(query.name + ":")
		t0 := time.Now()
		serial := query.ser()
		serialD := time.Since(t0)
		fmt.Printf("  serial:              %v\n", serialD.Round(time.Microsecond))
		t0 = time.Now()
		one := query.par(1)
		fmt.Printf("  parallel, 1 worker:  %v (same kernels, leased arena)\n", time.Since(t0).Round(time.Microsecond))
		t0 = time.Now()
		many := query.par(workers)
		manyD := time.Since(t0)
		fmt.Printf("  parallel, %d workers: %v (%.2fx)\n", workers, manyD.Round(time.Microsecond),
			float64(serialD)/float64(manyD))
		if !reflect.DeepEqual(serial, one) || !reflect.DeepEqual(serial, many) {
			log.Fatalf("%s: parallel rows diverge from serial", query.name)
		}
		fmt.Println("  parallel rows identical to serial ✓")
	}

	// Typed API: the same partition-then-merge idea for ordinary Go
	// callers — revenue per ship mode without touching compiled kernels.
	fmt.Println("\ntyped ParallelGroupBy (revenue by ship mode):")
	one := decimal.FromInt64(1)
	t0 := time.Now()
	groups, err := core.ParallelGroupBy(db.Lineitems, s, workers,
		func(_ core.Ref[tpch.SLineitem], v *tpch.SLineitem) (string, bool) { return v.ShipMode, true },
		func(acc decimal.Dec128, _ core.Ref[tpch.SLineitem], v *tpch.SLineitem) decimal.Dec128 {
			return acc.Add(v.ExtendedPrice.Mul(one.Sub(v.Discount)))
		},
		func(a, b decimal.Dec128) decimal.Dec128 { return a.Add(b) },
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d ship modes in %v (%d workers)\n", len(groups), time.Since(t0).Round(time.Microsecond), workers)
}
