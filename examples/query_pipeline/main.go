// Query pipeline: a custom aggregation — outside the TPC-H benchmark
// suite — built directly on the unified parallel query-pipeline layer
// (internal/query).
//
// The scenario is a web-analytics rollup: page-view events stream into
// a self-managed collection, and a dashboard wants per-page view counts
// and total latency. The pipeline runs the compiled-query shape the
// tpch Par drivers use, with none of their code:
//
//   - a Table stage fans the event scan out over all cores, each worker
//     folding blocks into a private region table in a leased arena;
//   - the workers' tables merge per partition in parallel;
//   - PartitionRows emits the dashboard rows partition-sharded.
//
// The merged rollup is verified against a Go-map oracle maintained at
// insert time, and the runtime stats snapshot shows the arena-pool and
// session-pool traffic the pipeline generated.
package main

import (
	"fmt"
	"log"
	"runtime"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/query"
	"repro/internal/region"
)

// PageView is one analytics event. Tabular: fixed-size fields only, so
// the collection stores it off-heap and scans it at memory speed.
type PageView struct {
	PageID    int64
	UserID    int64
	LatencyUs int64
}

// pageStats is the per-page rollup state; pointer-free, so it lives in
// region tables and vanishes with the arena.
type pageStats struct {
	Views     int64
	LatencyUs int64
}

func main() {
	rt, err := core.NewRuntime(core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()
	s := rt.MustSession()
	defer s.Close()

	events := core.MustCollection[PageView](rt, "pageviews", core.RowIndirect)

	// Ingest a deterministic event stream, keeping a Go-map oracle.
	const n = 200_000
	const pages = 500
	fmt.Printf("ingesting %d page-view events across %d pages...\n", n, pages)
	oracle := make(map[int64]pageStats, pages)
	seed := uint64(1)
	for i := 0; i < n; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		page := int64(seed % pages)
		lat := int64(100 + seed>>32%9900)
		events.MustAdd(s, &PageView{PageID: page, UserID: int64(i % 10_000), LatencyUs: lat})
		st := oracle[page]
		st.Views++
		st.LatencyUs += lat
		oracle[page] = st
	}

	// Compiled-query style: resolve field offsets once, scan slot
	// directories with raw pointers.
	sch := events.Schema()
	fPage := sch.MustField("PageID")
	fLat := sch.MustField("LatencyUs")
	kernel := func(_ *core.Session, blk *mem.Block, t *region.PartitionedTable[pageStats]) {
		for i := 0; i < blk.Capacity(); i++ {
			if !blk.SlotIsValid(i) {
				continue
			}
			st := t.At(*(*int64)(blk.FieldPtr(i, fPage)))
			st.Views++
			st.LatencyUs += *(*int64)(blk.FieldPtr(i, fLat))
		}
	}
	mergeStats := func(dst, src *pageStats) {
		dst.Views += src.Views
		dst.LatencyUs += src.LatencyUs
	}

	type row struct {
		Page  int64
		Stats pageStats
	}
	pool := region.NewArenaPool(nil, 0, 0)
	defer pool.Close()
	rt.RegisterArenaPool("pageview-rollup", pool)

	rollup := func(workers int) ([]row, time.Duration) {
		t0 := time.Now()
		pl := query.New(s, pool, workers)
		defer pl.Close()
		merged, err := query.Table(pl, events, pages, kernel, mergeStats)
		if err != nil {
			log.Fatal(err)
		}
		rows, err := query.PartitionRows(pl, merged, func(pt *region.Table[pageStats], out *[]row) {
			pt.Range(func(k int64, v *pageStats) bool {
				*out = append(*out, row{Page: k, Stats: *v})
				return true
			})
		})
		if err != nil {
			log.Fatal(err)
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].Stats.Views != rows[j].Stats.Views {
				return rows[i].Stats.Views > rows[j].Stats.Views
			}
			return rows[i].Page < rows[j].Page
		})
		return rows, time.Since(t0)
	}

	workers := runtime.NumCPU()
	serialRows, serialD := rollup(1)
	parRows, parD := rollup(workers)
	fmt.Printf("rollup: 1 worker %v, %d workers %v (%.2fx)\n",
		serialD.Round(time.Microsecond), workers, parD.Round(time.Microsecond),
		float64(serialD)/float64(parD))

	// Verify: parallel == serial == oracle.
	if len(parRows) != len(serialRows) || len(parRows) != len(oracle) {
		log.Fatalf("row counts diverge: par=%d serial=%d oracle=%d", len(parRows), len(serialRows), len(oracle))
	}
	for i, r := range parRows {
		if serialRows[i] != r {
			log.Fatalf("parallel row %d diverges from serial: %+v vs %+v", i, r, serialRows[i])
		}
		if oracle[r.Page] != r.Stats {
			log.Fatalf("page %d: pipeline %+v, oracle %+v", r.Page, r.Stats, oracle[r.Page])
		}
	}
	fmt.Println("pipeline rollup identical to serial run and insert-time oracle ✓")

	fmt.Println("\ntop pages by views:")
	for _, r := range parRows[:5] {
		fmt.Printf("  page %3d: %6d views, avg latency %5dus\n",
			r.Page, r.Stats.Views, r.Stats.LatencyUs/r.Stats.Views)
	}

	st := rt.StatsSnapshot()
	fmt.Printf("\nruntime stats: sessions leased=%d (reused=%d)\n", st.SessionsLeased, st.SessionsReused)
	for _, ap := range st.ArenaPools {
		fmt.Printf("  pool %-16s leases=%d reuses=%d retained=%dKiB\n",
			ap.Name, ap.Leases, ap.Reuses, ap.RetainedBytes>>10)
	}
}
