// Command skip_scan demonstrates the block-synopsis skip-scan layer on
// an append-in-event-time workload: a metrics collection loaded in
// timestamp order, queried over a narrow recent window.
//
// Because rows arrive roughly in time order, each block's registered
// Timestamp synopsis covers a narrow range — the window query's
// predicate pushdown prunes almost every block without dereferencing a
// single slot. A churn phase (scattered deletes, then transient recent
// rows written into reclaimed old slots and deleted again) leaves old
// blocks with stale-but-sound bounds that claim recency, so the same
// query must scan them — until a compaction pass rebuilds bounds exactly
// over the survivors and pruning snaps back. The window sum is identical
// in all three states; only the number of blocks touched changes.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

type Metric struct {
	Timestamp int64 // seconds since epoch; arrives in order
	Sensor    int64
	Value     int64
}

func main() {
	rt, err := core.NewRuntime(core.Options{BlockSize: 1 << 14})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()
	s := rt.MustSession()
	defer s.Close()

	metrics := core.MustCollection[Metric](rt, "metrics", core.RowIndirect)
	// Declare the synopsis before the first Add: every block carries
	// min/max Timestamp bounds for its whole lifetime.
	metrics.MustRegisterSynopses("Timestamp")

	const n = 200_000
	var refs []core.Ref[Metric]
	for i := 0; i < n; i++ {
		refs = append(refs, metrics.MustAdd(s, &Metric{
			Timestamp: int64(i),
			Sensor:    int64(i % 64),
			Value:     int64(i * 7 % 1000),
		}))
	}

	// Recent window: the last 1000 timestamps.
	const lo, hi = int64(n - 1000), int64(n - 1)
	sumWindow := func() (int64, int64) {
		pred := metrics.Predicate().Int64Range("Timestamp", lo, hi)
		before := rt.StatsSnapshot()
		total, err := core.ParallelAggregatePred(metrics, s, 4, pred,
			func(int) int64 { return 0 },
			func(acc int64, _ core.Ref[Metric], m *Metric) int64 {
				// Residual predicate per row: pruning only skips blocks
				// that provably hold no in-window row.
				if m.Timestamp >= lo && m.Timestamp <= hi {
					return acc + m.Value
				}
				return acc
			},
			func(a, b int64) int64 { return a + b },
		)
		if err != nil {
			log.Fatal(err)
		}
		after := rt.StatsSnapshot()
		return total, after.BlocksPruned - before.BlocksPruned
	}

	sum, pruned := sumWindow()
	fmt.Printf("fresh heap:      window sum=%d, pruned %d of %d blocks\n", sum, pruned, metrics.Context().Blocks())

	// Churn: scattered deletes fragment the old blocks (7 of 8 rows),
	// then transient recent-stamped rows recycle the freed slots — each
	// widens its host block's bounds up to "now" — and are deleted again.
	// Deletes never tighten, so the old blocks now claim recency they no
	// longer hold.
	old := refs[: n-1000 : n-1000]
	for i, r := range old {
		if i%8 != 0 {
			if err := metrics.Remove(s, r); err != nil {
				log.Fatal(err)
			}
		}
	}
	for i := 0; i < 4; i++ {
		rt.Manager().TryAdvanceEpoch() // let the freed slots ripen for reuse
	}
	var transient []core.Ref[Metric]
	for i := 0; i < n/5; i++ {
		transient = append(transient, metrics.MustAdd(s, &Metric{Timestamp: hi, Sensor: 1, Value: 0}))
	}
	for _, r := range transient {
		if err := metrics.Remove(s, r); err != nil {
			log.Fatal(err)
		}
	}

	sum, pruned = sumWindow()
	fmt.Printf("after churn:     window sum=%d, pruned %d of %d blocks (stale bounds claim recency)\n",
		sum, pruned, metrics.Context().Blocks())

	// Compaction merges the fragmented old blocks and rebuilds each
	// target's bounds exactly over the rows it holds.
	if _, err := rt.CompactNow(); err != nil {
		log.Fatal(err)
	}
	sum, pruned = sumWindow()
	st := rt.StatsSnapshot()
	fmt.Printf("after compact:   window sum=%d, pruned %d of %d blocks (exact bounds restored)\n",
		sum, pruned, metrics.Context().Blocks())
	fmt.Printf("lifetime: %d blocks pruned, %d scanned under predicates, %d synopsis rebuilds\n",
		st.BlocksPruned, st.BlocksScanned, st.SynopsisRebuilds)
}
