GO ?= go
SF ?= 0.05
REPS ?= 5

.PHONY: build vet test race-stress bench bench-joins clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build vet
	$(GO) test ./...

# The parallel-scan, pipeline and parallel-join stress tests
# (exactly-once and exact serial results under churn + compaction) under
# the race detector.
race-stress:
	$(GO) test -race -run Parallel ./internal/mem ./internal/core ./internal/query ./internal/tpch ./internal/region

# Emit the parallel-scan scaling figure as BENCH_parallel.json for the
# perf trajectory.
bench:
	$(GO) run ./cmd/smcbench -fig par -sf $(SF) -reps $(REPS) -json BENCH_parallel.json

# Emit the parallel-join scaling figure (Q3/Q5/Q7/Q8/Q9/Q10 over the
# unified query-pipeline layer) as BENCH_joins.json.
bench-joins:
	$(GO) run ./cmd/smcbench -fig joins -sf $(SF) -reps $(REPS) -json-joins BENCH_joins.json

clean:
	rm -f BENCH_parallel.json BENCH_joins.json
