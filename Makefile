GO ?= go
SF ?= 0.05
REPS ?= 5

# Figure outputs; CI overrides these to *.new.json so the benchdiff gate
# can compare them against the committed baselines.
PAR_OUT ?= BENCH_parallel.json
JOINS_OUT ?= BENCH_joins.json
COMPACT_OUT ?= BENCH_compact.json
PRUNE_OUT ?= BENCH_prune.json
SHARE_OUT ?= BENCH_share.json
CLUSTER_OUT ?= BENCH_cluster.json

.PHONY: build vet test race-stress bench bench-joins bench-compact bench-prune bench-share bench-cluster benchdiff clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build vet
	$(GO) test ./...

# The parallel-scan, pipeline, parallel-join, parallel-compaction and
# maintainer stress tests (exactly-once and exact serial results under
# churn + compaction) under the race detector.
race-stress:
	$(GO) test -race -run 'Parallel|Maintainer|Compact|Pruned|Fault|Cancel|Budget|Share|Cluster' ./internal/mem ./internal/core ./internal/query ./internal/tpch ./internal/region

# Emit the parallel-scan scaling figure as BENCH_parallel.json for the
# perf trajectory.
bench:
	$(GO) run ./cmd/smcbench -fig par -sf $(SF) -reps $(REPS) -json $(PAR_OUT)

# Emit the parallel-join scaling figure (Q3/Q5/Q7/Q8/Q9/Q10 over the
# unified query-pipeline layer) as BENCH_joins.json.
bench-joins:
	$(GO) run ./cmd/smcbench -fig joins -sf $(SF) -reps $(REPS) -json-joins $(JOINS_OUT)

# Emit the parallel-compaction figure (reclamation throughput and Q1/Q6
# interference over 1..NumCPU move workers) as BENCH_compact.json.
bench-compact:
	$(GO) run ./cmd/smcbench -fig compact -sf $(SF) -reps $(REPS) -json-compact $(COMPACT_OUT)

# Emit the skip-scan pruning figure (pruned vs unpruned Q6-style window
# scans over selectivity × heap fragmentation) as BENCH_prune.json.
bench-prune:
	$(GO) run ./cmd/smcbench -fig prune -sf $(SF) -reps $(REPS) -json-prune $(PRUNE_OUT)

# Emit the cooperative scan-sharing figure (shared vs independent
# N-concurrent Q6-style window scans, with block-visit accounting) as
# BENCH_share.json.
bench-share:
	$(GO) run ./cmd/smcbench -fig share -sf $(SF) -reps $(REPS) -json-share $(SHARE_OUT)

# Emit the clustered-compaction figure (steady-state pruned fractions
# over churn cycles, clustered vs size-only maintenance, plus the
# cross-edge semi-join pruning deltas for Q3/Q10) as BENCH_cluster.json.
bench-cluster:
	$(GO) run ./cmd/smcbench -fig cluster -sf $(SF) -reps $(REPS) -json-cluster $(CLUSTER_OUT)

# Perf-regression gate: compare freshly emitted *.new.json figures
# against the committed baselines (workers=1 points, >30% fails; skips
# cleanly on a CPU-count mismatch). Run the bench targets with
# *_OUT=...new.json first — see .github/workflows/ci.yml.
benchdiff:
	$(GO) run ./cmd/benchdiff -skip-missing BENCH_parallel.json BENCH_parallel.new.json
	$(GO) run ./cmd/benchdiff -skip-missing BENCH_joins.json BENCH_joins.new.json
	$(GO) run ./cmd/benchdiff -skip-missing BENCH_compact.json BENCH_compact.new.json
	$(GO) run ./cmd/benchdiff -skip-missing BENCH_prune.json BENCH_prune.new.json
	$(GO) run ./cmd/benchdiff -skip-missing BENCH_share.json BENCH_share.new.json
	$(GO) run ./cmd/benchdiff -skip-missing BENCH_cluster.json BENCH_cluster.new.json

clean:
	rm -f BENCH_parallel.json BENCH_joins.json BENCH_compact.json BENCH_prune.json BENCH_share.json \
		BENCH_cluster.json BENCH_parallel.new.json BENCH_joins.new.json BENCH_compact.new.json \
		BENCH_prune.new.json BENCH_share.new.json BENCH_cluster.new.json
