GO ?= go
SF ?= 0.05
REPS ?= 5

.PHONY: build vet test race-stress bench clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build
	$(GO) test ./...

# The parallel-scan stress tests (exactly-once under churn + compaction)
# under the race detector.
race-stress:
	$(GO) test -race -run Parallel ./internal/mem ./internal/core ./internal/tpch

# Emit the parallel-scan scaling figure as BENCH_parallel.json for the
# perf trajectory.
bench:
	$(GO) run ./cmd/smcbench -fig par -sf $(SF) -reps $(REPS) -json BENCH_parallel.json

clean:
	rm -f BENCH_parallel.json
