GO ?= go
SF ?= 0.05
REPS ?= 5

# SUFFIX distinguishes fresh figure emissions from committed baselines:
# CI runs the bench targets with SUFFIX=.new, then `make benchdiff`
# compares BENCH_<stem>.json against BENCH_<stem>.new.json. The *_OUT
# variables remain overridable per figure.
SUFFIX ?=

# Pinned lint/scan tool versions (module semver; staticcheck v0.6.1 is
# the 2025.1.1 release). `make lint` installs exactly these; CI caches
# ~/go/bin keyed on the Makefile hash, so a version bump here rebuilds
# the tools and nothing else ever re-downloads them.
STATICCHECK_VERSION ?= v0.6.1
GOVULNCHECK_VERSION ?= v1.1.4

# Figure output stems, in bench/benchdiff/clean order.
FIG_STEMS := parallel joins compact prune share cluster serve govern

PAR_OUT ?= BENCH_parallel$(SUFFIX).json
JOINS_OUT ?= BENCH_joins$(SUFFIX).json
COMPACT_OUT ?= BENCH_compact$(SUFFIX).json
PRUNE_OUT ?= BENCH_prune$(SUFFIX).json
SHARE_OUT ?= BENCH_share$(SUFFIX).json
CLUSTER_OUT ?= BENCH_cluster$(SUFFIX).json
SERVE_OUT ?= BENCH_serve$(SUFFIX).json
GOVERN_OUT ?= BENCH_govern$(SUFFIX).json

.PHONY: build vet test lint race-stress serve-smoke \
	bench bench-par bench-joins bench-compact bench-prune bench-share bench-cluster bench-serve bench-govern \
	benchdiff clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build vet
	$(GO) test ./...

# Pinned static analysis + vulnerability scan (plus gofmt, which needs
# no install). CI calls this instead of re-typing tool invocations.
lint:
	test -z "$$(gofmt -l .)" || { gofmt -l .; exit 1; }
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	$(GO) install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)
	"$$($(GO) env GOPATH)/bin/staticcheck" ./...
	"$$($(GO) env GOPATH)/bin/govulncheck" ./...

# The parallel-scan, pipeline, parallel-join, parallel-compaction,
# maintainer and HTTP-front-door stress tests (exactly-once and exact
# serial results under churn + compaction + request storms) under the
# race detector.
race-stress:
	$(GO) test -race -run 'Parallel|Maintainer|Compact|Pruned|Fault|Cancel|Budget|Share|Cluster|Serve|Govern' \
		./internal/mem ./internal/core ./internal/query ./internal/tpch ./internal/region ./internal/serve

# End-to-end smoke of the smcserve front door: boot on a small SF, curl
# a parameterized Q6 and /stats, assert the served sum equals the
# serial oracle and that a client-abandoned request leaks nothing.
serve-smoke:
	./scripts/serve_smoke.sh

# bench-<fig> emits one figure's JSON; `make bench` keeps its historical
# meaning (the parallel-scan scaling figure).
bench: bench-par

bench-par:
	$(GO) run ./cmd/smcbench -fig par -sf $(SF) -reps $(REPS) -json $(PAR_OUT)

bench-joins:
	$(GO) run ./cmd/smcbench -fig joins -sf $(SF) -reps $(REPS) -json-joins $(JOINS_OUT)

bench-compact:
	$(GO) run ./cmd/smcbench -fig compact -sf $(SF) -reps $(REPS) -json-compact $(COMPACT_OUT)

bench-prune:
	$(GO) run ./cmd/smcbench -fig prune -sf $(SF) -reps $(REPS) -json-prune $(PRUNE_OUT)

bench-share:
	$(GO) run ./cmd/smcbench -fig share -sf $(SF) -reps $(REPS) -json-share $(SHARE_OUT)

bench-cluster:
	$(GO) run ./cmd/smcbench -fig cluster -sf $(SF) -reps $(REPS) -json-cluster $(CLUSTER_OUT)

bench-serve:
	$(GO) run ./cmd/smcbench -fig serve -sf $(SF) -reps $(REPS) -json-serve $(SERVE_OUT)

bench-govern:
	$(GO) run ./cmd/smcbench -fig govern -sf $(SF) -reps $(REPS) -json-govern $(GOVERN_OUT)

# Perf-regression gate: compare freshly emitted *.new.json figures
# against the committed baselines (workers=1 points, >30% fails; skips
# cleanly on a CPU-count or SF mismatch). Run the bench targets with
# SUFFIX=.new first — see .github/workflows/ci.yml.
benchdiff:
	@for s in $(FIG_STEMS); do \
		$(GO) run ./cmd/benchdiff -skip-missing BENCH_$$s.json BENCH_$$s.new.json || exit 1; \
	done

clean:
	rm -f $(foreach s,$(FIG_STEMS),BENCH_$(s).json BENCH_$(s).new.json)
